"""Trace-analysis command line: summarize or convert JSONL event logs.

Examples::

    python -m repro.obs report trace.jsonl
    python -m repro.obs chrome trace.jsonl trace.chrome.json
    python -m repro.obs metrics trace.jsonl --check
    python -m repro.obs dashboard trace.jsonl dashboard.html

(``python -m repro.obs.cli`` works identically.) JSONL logs are produced
by the experiment harness's ``--trace PATH`` flag or by passing a
:class:`~repro.obs.Tracer` to any instrumented scheduler and calling
:func:`~repro.obs.write_jsonl`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.obs import events as ev_types
from repro.obs.events import TraceEvent
from repro.obs.export import read_jsonl, write_chrome_trace

__all__ = ["main", "report_text"]


def _rate(hits: int, misses: int) -> Optional[float]:
    total = hits + misses
    return hits / total if total else None


def report_text(events: Sequence[TraceEvent]) -> str:
    """Render the standard trace report (the ``report`` subcommand body)."""
    by_type: Dict[str, int] = {}
    span_time: Dict[str, float] = {}
    span_count: Dict[str, int] = {}
    for ev in events:
        by_type[ev.name] = by_type.get(ev.name, 0) + 1
        if ev.dur > 0.0:
            span_time[ev.name] = span_time.get(ev.name, 0.0) + ev.dur
            span_count[ev.name] = span_count.get(ev.name, 0) + 1

    lines: List[str] = [f"trace report — {len(events)} events"]

    lines.append("")
    lines.append("events by type:")
    for name, n in sorted(by_type.items(), key=lambda kv: (-kv[1], kv[0])):
        lines.append(f"  {name:<24} {n:>8}")

    if span_time:
        lines.append("")
        lines.append("time by phase (span events):")
        for name, total in sorted(span_time.items(), key=lambda kv: -kv[1]):
            n = span_count[name]
            lines.append(
                f"  {name:<24} {total * 1e3:>10.2f} ms"
                f"  ({n} spans, {total / n * 1e3:.3f} ms avg)"
            )

    lines.append("")
    lines.append("derived rates:")
    loc_rate = _rate(
        by_type.get(ev_types.LOCALITY_HIT, 0),
        by_type.get(ev_types.LOCALITY_MISS, 0),
    )
    memo_rate = _rate(
        by_type.get(ev_types.MEMO_HIT, 0), by_type.get(ev_types.MEMO_MISS, 0)
    )
    placed = by_type.get(ev_types.TASK_PLACED, 0)
    backfills = by_type.get(ev_types.BACKFILL_HIT, 0)
    rows = [
        ("locality hit rate", loc_rate),
        ("memo hit rate", memo_rate),
        ("backfill fill ratio", backfills / placed if placed else None),
    ]
    for label, value in rows:
        shown = f"{value:.1%}" if value is not None else "n/a"
        lines.append(f"  {label:<24} {shown:>8}")
    for label, name in [
        ("tasks placed", ev_types.TASK_PLACED),
        ("pseudo-edges added", ev_types.PSEUDO_EDGE_ADDED),
        ("redistributions costed", ev_types.REDISTRIBUTION_COSTED),
        ("outer iterations", ev_types.OUTER_ITERATION),
        ("look-ahead steps", ev_types.LOOKAHEAD_STEP),
    ]:
        lines.append(f"  {label:<24} {by_type.get(name, 0):>8}")

    sim_tasks = [e for e in events if e.name == ev_types.SIM_TASK]
    if sim_tasks:
        makespan = max(float(e.fields.get("finish", 0.0)) for e in sim_tasks)
        lines.append("")
        lines.append(
            f"simulation: {len(sim_tasks)} task spans, makespan {makespan:g}"
        )
    return "\n".join(lines)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="Summarize or convert scheduler trace logs (JSONL).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rep = sub.add_parser("report", help="print a summary of a JSONL trace")
    rep.add_argument("path", help="JSONL trace file (from --trace / write_jsonl)")

    chrome = sub.add_parser(
        "chrome",
        help="convert a JSONL trace to Chrome trace-event JSON "
        "(open in chrome://tracing or ui.perfetto.dev)",
    )
    chrome.add_argument("path", help="JSONL trace file")
    chrome.add_argument("out", help="output .json path")

    metrics = sub.add_parser(
        "metrics",
        help="derive a metrics registry from a JSONL trace and emit "
        "OpenMetrics text exposition",
    )
    metrics.add_argument("path", help="JSONL trace file")
    metrics.add_argument(
        "--out",
        default=None,
        help="write the exposition here instead of stdout",
    )
    metrics.add_argument(
        "--check",
        action="store_true",
        help="lint the rendered exposition (exit non-zero on problems)",
    )

    dash = sub.add_parser(
        "dashboard",
        help="render the self-contained HTML explainability dashboard "
        "(utilization heatmap, attribution, regret list, provenance)",
    )
    dash.add_argument("path", help="JSONL trace file")
    dash.add_argument(
        "out",
        nargs="?",
        default="dashboard.html",
        help="output .html path (default: dashboard.html)",
    )
    dash.add_argument(
        "--title",
        default="Schedule explainability dashboard",
        help="page title",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> None:
    args = _parser().parse_args(argv)
    events = read_jsonl(args.path)
    if args.command == "report":
        print(report_text(events))
    elif args.command == "chrome":
        n = write_chrome_trace(events, args.out)
        print(f"wrote {n} trace slices to {args.out}")
    elif args.command == "metrics":
        from repro.obs.registry import (
            registry_from_events,
            render_openmetrics,
            validate_openmetrics,
        )

        text = render_openmetrics(registry_from_events(events))
        if args.out is not None:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"wrote OpenMetrics exposition to {args.out}")
        else:
            sys.stdout.write(text)
        if args.check:
            problems = validate_openmetrics(text)
            for p in problems:
                print(f"OPENMETRICS LINT: {p}", file=sys.stderr)
            if problems:
                raise SystemExit(1)
            print("openmetrics lint OK", file=sys.stderr)
    elif args.command == "dashboard":
        from repro.obs.dashboard import write_dashboard

        out = write_dashboard(events, args.out, title=args.title)
        print(f"wrote dashboard ({len(events)} events) to {out}")


if __name__ == "__main__":  # pragma: no cover
    main()
