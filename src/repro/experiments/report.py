"""Terminal rendering of experiment series (the paper's plot data as text)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["format_series_table"]


def format_series_table(
    title: str,
    proc_counts: Sequence[int],
    series: Dict[str, List[float]],
    *,
    value_format: str = "{:.3f}",
    row_label: str = "P",
    note: Optional[str] = None,
) -> str:
    """Render ``{scheme: [value per P]}`` as an aligned text table.

    One row per processor count, one column per scheme — the same data the
    paper plots, printable by benchmarks and the CLI.
    """
    schemes = list(series)
    widths = {s: max(len(s), 8) for s in schemes}
    header = f"{row_label:>5} | " + "  ".join(
        f"{s:>{widths[s]}}" for s in schemes
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for i, p in enumerate(proc_counts):
        cells = "  ".join(
            f"{value_format.format(series[s][i]):>{widths[s]}}" for s in schemes
        )
        lines.append(f"{p:>5} | {cells}")
    if note:
        lines.append("-" * len(header))
        lines.append(note)
    return "\n".join(lines)
