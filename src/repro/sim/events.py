"""Event records emitted by the execution engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["EventKind", "Event"]


class EventKind(enum.Enum):
    """What happened at an event timestamp."""

    TRANSFER_START = "transfer_start"
    TRANSFER_END = "transfer_end"
    TASK_START = "task_start"
    TASK_END = "task_end"
    # Job-granularity events used by the online daemon (`repro.online`):
    # a whole DAG arriving at, entering, and leaving the live chart.
    JOB_SUBMIT = "job_submit"
    JOB_START = "job_start"
    JOB_END = "job_end"
    REPLAN = "replan"


@dataclass(frozen=True)
class Event:
    """One timestamped occurrence in a simulated execution.

    ``edge`` is set for transfer events (``(src_task, dst_task)``); ``task``
    is set for task events.
    """

    time: float
    kind: EventKind
    task: Optional[str] = None
    edge: Optional[Tuple[str, str]] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        what = self.task if self.task is not None else self.edge
        return f"Event({self.time:.4f}, {self.kind.value}, {what!r})"
