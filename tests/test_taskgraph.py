"""TaskGraph construction, queries, and invariants."""

import pytest

from repro import TaskGraph
from repro.exceptions import CycleError, GraphError, UnknownTaskError
from repro.speedup import ExecutionProfile, LinearSpeedup


def profile(et1=10.0):
    return ExecutionProfile(LinearSpeedup(), et1)


@pytest.fixture
def diamond():
    g = TaskGraph("diamond")
    for name in ("A", "B", "C", "D"):
        g.add_task(name, profile())
    g.add_edge("A", "B", 100.0)
    g.add_edge("A", "C", 200.0)
    g.add_edge("B", "D", 300.0)
    g.add_edge("C", "D", 400.0)
    return g


class TestConstruction:
    def test_add_task_returns_task(self):
        g = TaskGraph()
        t = g.add_task("X", profile(5.0), kind="add")
        assert t.name == "X"
        assert t.attrs == {"kind": "add"}
        assert t.time(2) == 2.5

    def test_duplicate_task_rejected(self):
        g = TaskGraph()
        g.add_task("X", profile())
        with pytest.raises(GraphError, match="duplicate"):
            g.add_task("X", profile())

    def test_bad_profile_rejected(self):
        g = TaskGraph()
        with pytest.raises(GraphError):
            g.add_task("X", 3.0)

    def test_edge_to_unknown_task(self):
        g = TaskGraph()
        g.add_task("X", profile())
        with pytest.raises(UnknownTaskError):
            g.add_edge("X", "Y")

    def test_self_loop_rejected(self):
        g = TaskGraph()
        g.add_task("X", profile())
        with pytest.raises(CycleError):
            g.add_edge("X", "X")

    def test_cycle_rejected_immediately(self):
        g = TaskGraph()
        for n in ("A", "B", "C"):
            g.add_task(n, profile())
        g.add_edge("A", "B")
        g.add_edge("B", "C")
        with pytest.raises(CycleError):
            g.add_edge("C", "A")

    def test_duplicate_edge_rejected(self, diamond):
        with pytest.raises(GraphError, match="duplicate edge"):
            diamond.add_edge("A", "B")

    def test_negative_volume_rejected(self):
        g = TaskGraph()
        g.add_task("A", profile())
        g.add_task("B", profile())
        with pytest.raises(ValueError):
            g.add_edge("A", "B", -1.0)


class TestQueries:
    def test_counts(self, diamond):
        assert diamond.num_tasks == 4
        assert diamond.num_edges == 4
        assert len(diamond) == 4

    def test_membership(self, diamond):
        assert "A" in diamond
        assert "Z" not in diamond

    def test_data_volume(self, diamond):
        assert diamond.data_volume("C", "D") == 400.0

    def test_data_volume_missing_edge(self, diamond):
        with pytest.raises(GraphError):
            diamond.data_volume("A", "D")

    def test_predecessors_successors(self, diamond):
        assert set(diamond.predecessors("D")) == {"B", "C"}
        assert set(diamond.successors("A")) == {"B", "C"}

    def test_sources_sinks(self, diamond):
        assert diamond.sources() == ["A"]
        assert diamond.sinks() == ["D"]

    def test_et(self, diamond):
        assert diamond.et("A", 2) == 5.0
        assert diamond.sequential_time("A") == 10.0

    def test_total_sequential_work(self, diamond):
        assert diamond.total_sequential_work() == 40.0

    def test_topological_order_valid(self, diamond):
        order = diamond.topological_order()
        pos = {t: i for i, t in enumerate(order)}
        for u, v in diamond.edges():
            assert pos[u] < pos[v]

    def test_unknown_task_raises(self, diamond):
        with pytest.raises(UnknownTaskError):
            diamond.task("nope")


class TestTransforms:
    def test_copy_is_structural(self, diamond):
        c = diamond.copy()
        assert c.tasks() == diamond.tasks()
        assert c.edges() == diamond.edges()
        c.add_task("E", profile())
        assert "E" not in diamond

    def test_copy_shares_profiles(self, diamond):
        c = diamond.copy()
        assert c.task("A").profile is diamond.task("A").profile

    def test_validate_passes(self, diamond):
        diamond.validate()

    def test_validate_detects_backdoor_cycle(self, diamond):
        diamond.nx_graph().add_edge("D", "A", data_volume=0.0)
        with pytest.raises(CycleError):
            diamond.validate()

    def test_validate_detects_bad_volume(self, diamond):
        diamond.nx_graph().edges["A", "B"]["data_volume"] = -5
        with pytest.raises(GraphError):
            diamond.validate()
