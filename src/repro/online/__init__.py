"""Event-driven online scheduling daemon (the paper's run-time framework).

The paper's closing future-work item asks for "incorporation of the
scheduling strategy into a run-time framework for the on-line scheduling
of mixed parallel applications". This package is that framework, built
for streaming arrivals rather than the deviation-replay loop of
:mod:`repro.sim.online`:

* :mod:`repro.online.events` — the deterministic priority event queue
  (submit / start / finish / replan);
* :mod:`repro.online.jobs` — job records and per-job task namespacing;
* :mod:`repro.online.admission` — admission control (reject / defer);
* :mod:`repro.online.placer` — the perf core: an incremental placer that
  persists the :class:`~repro.schedule.ProcessorTimeline`,
  :class:`~repro.schedule.PlacementIndex` and
  :class:`~repro.schedulers.costcache.CostCache` across events and
  splices each arrival into the live chart, plus the cold-rebuild
  differential arm that must stay bit-identical;
* :mod:`repro.online.daemon` — the event loop tying it together;
* :mod:`repro.online.swf` — Standard Workload Format trace ingestion;
* :mod:`repro.online.arrivals` — synthetic Poisson/Zipf job streams.

``python -m repro.online`` drives a replay from the command line;
``python -m repro.perf online`` benchmarks the incremental-vs-cold
speedup into ``BENCH_online.json``.
"""

from repro.online.admission import AdmissionDecision, AdmissionPolicy
from repro.online.arrivals import default_templates, poisson_zipf_stream
from repro.online.daemon import OnlineDaemonReport, OnlineSchedulerDaemon
from repro.online.events import EventQueue, OnlineEvent, OnlineEventKind
from repro.online.jobs import Job, namespace_graph
from repro.online.placer import (
    ColdRebuildPlacer,
    IncrementalPlacer,
    PlacementResult,
)
from repro.online.swf import SwfJob, jobs_from_swf, parse_swf

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "ColdRebuildPlacer",
    "EventQueue",
    "IncrementalPlacer",
    "Job",
    "OnlineDaemonReport",
    "OnlineEvent",
    "OnlineEventKind",
    "OnlineSchedulerDaemon",
    "PlacementResult",
    "SwfJob",
    "default_templates",
    "jobs_from_swf",
    "namespace_graph",
    "parse_swf",
    "poisson_zipf_stream",
]
