"""Figure 6 — the backfill ablation.

LoC-MPS with its full backfill scheduler versus the latest-free-time
variant, on synthetic graphs with CCR=0.1, ``Amax=48, sigma=2``. The paper
reports the no-backfill scheme is up to ~8% worse in makespan but has lower
scheduling overheads — both series are produced here.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster import FAST_ETHERNET_100MBPS
from repro.experiments.common import run_comparison
from repro.experiments.fig04 import FULL_PROCS, QUICK_PROCS
from repro.experiments.figures import FigureResult
from repro.obs.tracer import Tracer
from repro.workloads import paper_suite

__all__ = ["run", "main"]

SCHEMES = ["locmps", "locmps-nobackfill"]


def run(
    *,
    quick: bool = True,
    proc_counts: Optional[Sequence[int]] = None,
    graph_count: Optional[int] = None,
    min_tasks: int = 10,
    max_tasks: int = 50,
    seed: int = 2006,
    progress: bool = False,
    workers: int = 1,
    tracer: Optional[Tracer] = None,
    explain: bool = False,
    cache=None,
) -> FigureResult:
    """Regenerate Fig 6 (both panels: performance and scheduling time)."""
    procs = list(proc_counts or (QUICK_PROCS if quick else FULL_PROCS))
    count = graph_count or (6 if quick else 30)
    graphs = paper_suite(
        min_tasks=min_tasks,
        max_tasks=max_tasks,ccr=0.1, amax=48.0, sigma=2.0, count=count, seed=seed)
    result = run_comparison(
        graphs,
        SCHEMES,
        procs,
        bandwidth=FAST_ETHERNET_100MBPS,
        progress=progress,
        workers=workers,
        tracer=tracer,
        explain=explain,
        cache=cache,
    )
    return FigureResult(
        figure="Fig 6",
        title=(
            f"backfill ablation, CCR=0.1, Amax=48, sigma=2 — relative "
            f"performance vs LoC-MPS-with-backfill ({count} graphs)"
        ),
        proc_counts=procs,
        series=result.relative_to("locmps"),
        sched_times={s: result.mean_sched_time(s) for s in SCHEMES},
    )


def main(argv: Optional[Sequence[str]] = None) -> None:  # pragma: no cover
    from repro.experiments.cli import run_figure_cli

    run_figure_cli("fig6", argv)
