"""TASK — the pure task-parallel baseline.

Per the paper: allocate one processor to each task and schedule with the
locality-conscious backfill scheduler. With narrow tasks, backfill packs the
chart well, but no task ever exploits data parallelism, so makespan is
bounded below by the longest sequential chain.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.graph import TaskGraph
from repro.schedulers.base import Scheduler, SchedulingResult
from repro.schedulers.locbs import locbs_schedule

__all__ = ["TaskParallelScheduler"]


class TaskParallelScheduler(Scheduler):
    """One processor per task + LoCBS."""

    name = "task"

    def run(self, graph: TaskGraph, cluster: Cluster) -> SchedulingResult:
        alloc = {t: 1 for t in graph.tasks()}
        result = locbs_schedule(graph, cluster, alloc, tracer=self.tracer)
        result.schedule.scheduler = self.name
        return result
