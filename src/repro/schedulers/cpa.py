"""CPA — Critical Path and Allocation (Radulescu & van Gemund, ICPP 2001).

The low-cost two-phase baseline:

* **Allocation phase.** Starting from one processor per task, while the
  critical-path length ``L`` exceeds the average processor area
  ``A = (1/P) * sum_t np(t) * et(t, np(t))``, grow the critical-path task
  with the largest execution-time reduction by one processor. Both ``L``
  and ``A`` are static quantities of the DAG and the allocation — no
  schedule is computed inside the loop, which is what makes CPA cheap.
* **Scheduling phase.** List-schedule the final allocation.

The decoupling of the two phases (allocation never sees resource-induced
serialization) and the locality-unaware scheduler are the quality limits the
paper exploits.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster import Cluster
from repro.exceptions import ScheduleError
from repro.graph import TaskGraph, critical_path
from repro.schedulers.base import Scheduler, SchedulingResult, edge_cost_map
from repro.schedulers.list_scheduler import list_schedule

__all__ = ["CpaScheduler"]


class CpaScheduler(Scheduler):
    """Two-phase Critical Path and Allocation baseline."""

    name = "cpa"

    def __init__(self, *, max_rounds: Optional[int] = None) -> None:
        self.max_rounds = max_rounds

    def run(self, graph: TaskGraph, cluster: Cluster) -> SchedulingResult:
        tasks = graph.tasks()
        if not tasks:
            raise ScheduleError("cannot schedule an empty task graph")
        P = cluster.num_processors
        g = graph.nx_graph()
        limits = {t: min(P, graph.task(t).profile.pbest(P)) for t in tasks}
        alloc: Dict[str, int] = {t: 1 for t in tasks}

        def cp_length_and_path():
            costs = edge_cost_map(graph, cluster, alloc)
            return critical_path(
                g, lambda t: graph.et(t, alloc[t]), lambda u, v: costs[(u, v)]
            )

        def average_area() -> float:
            return sum(graph.task(t).profile.work(alloc[t]) for t in tasks) / P

        # Each growth is monotone (areas only grow, CP only shrinks), so the
        # loop ends; the cap is a safety valve.
        cap = self.max_rounds or (graph.num_tasks * P + 16)
        for _round in range(cap):
            length, cp = cp_length_and_path()
            if length <= average_area():
                break
            candidates = [
                t
                for t in dict.fromkeys(cp)
                if alloc[t] < limits[t] and graph.task(t).profile.gain(alloc[t]) > 0
            ]
            if not candidates:
                break
            best = max(
                candidates,
                key=lambda t: (graph.task(t).profile.gain(alloc[t]), t),
            )
            alloc[best] += 1

        result = list_schedule(graph, cluster, alloc)
        result.schedule.scheduler = self.name
        return result
