"""Montage-style workflow generator."""

import networkx as nx
import pytest

from repro import Cluster, get_scheduler, validate_schedule
from repro.cluster import GIGABIT_ETHERNET
from repro.exceptions import WorkloadError
from repro.workloads import montage_graph


class TestMontage:
    def test_structure(self):
        g = montage_graph(6)
        g.validate()
        # 6 projections + 5 fits + model + 6 corrections + mosaic
        assert g.num_tasks == 6 + 5 + 1 + 6 + 1
        assert g.sinks() == ["mosaic"]
        assert len(g.sources()) == 6

    def test_fan_out_fan_in(self):
        g = montage_graph(5)
        assert set(g.predecessors("fit0")) == {"project0", "project1"}
        assert len(g.predecessors("bgmodel")) == 4
        assert set(g.predecessors("correct2")) == {"bgmodel", "project2"}
        assert len(g.predecessors("mosaic")) == 5

    def test_all_paths_through_bgmodel(self):
        g = montage_graph(4)
        nxg = g.nx_graph()
        assert nx.has_path(nxg, "project0", "bgmodel")
        assert nx.has_path(nxg, "bgmodel", "mosaic")

    def test_scalability_skew(self):
        g = montage_graph(4)
        assert (
            g.task("project0").profile.model.serial_fraction
            < g.task("bgmodel").profile.model.serial_fraction
        )

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            montage_graph(1)
        with pytest.raises(WorkloadError):
            montage_graph(4, flop_rate=0)

    def test_schedulable_and_mixed_wins(self):
        g = montage_graph(6)
        cl = Cluster(num_processors=8, bandwidth=GIGABIT_ETHERNET)
        makespans = {}
        for name in ("locmps", "task", "data"):
            s = get_scheduler(name).schedule(g, cl)
            assert validate_schedule(s, g) == []
            makespans[name] = s.makespan
        assert makespans["locmps"] <= min(makespans.values()) + 1e-6
