"""Self-contained HTML dashboard rendered from a trace JSONL.

``render_dashboard`` turns a recorded event stream (the experiments
CLI's ``--trace`` output, or any :func:`repro.obs.write_jsonl` file)
into one static HTML page with zero external dependencies — no CDN, no
JavaScript framework; interactivity is native ``<details>`` drill-down
and SVG/``title`` hover tooltips, so the file works offline and inside
CI artifact viewers.

Sections (each degrades to an empty-state note when its events are
absent from the trace):

* headline stat tiles — makespan, placements, processors, utilization;
* a processor-utilization heatmap (rows = processors, columns = time
  bins, sequential single-hue ramp), built from ``sim_task`` events
  when the trace holds a replay, else from ``task_placed`` events;
* per-processor makespan attribution (compute / redistribution / idle
  stacked bars mirroring :func:`repro.schedule.attribution
  .attribute_makespan`), with the numeric table alongside;
* the regret list — the placements whose second-best alternative was
  closest (from ``placement_decision`` events, i.e. ``--explain``);
* decision provenance drill-down, grouped by the decisions' ``run``
  label: every candidate hole the LoCBS scan probed, its outcome, and
  its finish margin against the winner.

CLI: ``python -m repro.obs dashboard trace.jsonl dashboard.html``.
"""

from __future__ import annotations

import html
import math
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Union

from repro.obs import events as ev_types
from repro.obs.events import TraceEvent
from repro.schedulers.provenance import WON, PlacementDecision, rank_regrets

__all__ = ["render_dashboard", "write_dashboard"]

#: sequential blue ramp, steps 100..700 (light -> dark); the dark theme
#: reverses it so near-zero recedes toward the dark surface
_SEQ_RAMP = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
)

#: display caps — each one is announced in the rendered page, never silent
_MAX_REGRET_ROWS = 15
_MAX_DECISIONS_PER_RUN = 150
_MAX_CANDIDATE_ROWS = 120
_HEATMAP_BINS = 48


def _esc(x: Any) -> str:
    return html.escape(str(x), quote=True)


def _fmt(x: float, nd: int = 4) -> str:
    """Compact numeric label: trims trailing zeros, handles inf."""
    if x != x or math.isinf(x):  # NaN / inf
        return "∞" if x > 0 else str(x)
    return f"{x:.{nd}g}"


def _procs(procs: Sequence[int]) -> str:
    return "{" + ",".join(str(p) for p in procs) + "}" if procs else "—"


# ---------------------------------------------------------------------------
# event extraction
# ---------------------------------------------------------------------------


class _Row:
    """One placed/executed task interval on a processor set."""

    __slots__ = ("task", "processors", "start", "exec_start", "finish")

    def __init__(
        self,
        task: str,
        processors: Tuple[int, ...],
        start: float,
        exec_start: float,
        finish: float,
    ) -> None:
        self.task = task
        self.processors = processors
        self.start = start
        self.exec_start = exec_start
        self.finish = finish


def _row_from_fields(f: Mapping[str, Any]) -> _Row:
    start = float(f.get("start", 0.0))
    return _Row(
        task=str(f.get("task", "?")),
        processors=tuple(int(p) for p in f.get("processors", ())),
        start=start,
        exec_start=float(f.get("exec_start", start)),
        finish=float(f.get("finish", start)),
    )


def _extract_rows(
    events: Sequence[TraceEvent],
) -> Tuple[List[_Row], str]:
    """Task intervals and their source, best first.

    Preference order: realized ``sim_task`` spans; then the winning
    probes of ``placement_decision`` events (the *committed* schedule —
    the explaining pass records exactly it); last, ``task_placed``
    events deduplicated to the final placement per task, because the
    look-ahead emits one ``task_placed`` per speculative LoCBS pass and
    overlaying every pass would fabricate utilization.
    """
    sim = [
        _row_from_fields(ev.fields)
        for ev in events
        if ev.name == ev_types.SIM_TASK
    ]
    if sim:
        return sim, "replay (sim_task events)"
    winners: List[_Row] = []
    for ev in events:
        if ev.name != ev_types.PLACEMENT_DECISION:
            continue
        d = PlacementDecision.from_dict(ev.fields)
        if 0 <= d.winner < len(d.candidates):
            w = d.placement
            winners.append(
                _Row(d.task, w.processors, w.start, w.exec_start, w.finish)
            )
    if winners:
        return winners, "committed schedule (placement_decision winners)"
    last: Dict[str, _Row] = {}
    for ev in events:
        if ev.name == ev_types.TASK_PLACED:
            row = _row_from_fields(ev.fields)
            last[row.task] = row
    if last:
        return (
            list(last.values()),
            "planned (last task_placed per task; look-ahead passes "
            "collapsed)",
        )
    return [], ""


def _extract_decisions(
    events: Sequence[TraceEvent],
) -> List[PlacementDecision]:
    return [
        PlacementDecision.from_dict(ev.fields)
        for ev in events
        if ev.name == ev_types.PLACEMENT_DECISION
    ]


# ---------------------------------------------------------------------------
# derived data
# ---------------------------------------------------------------------------


def _attribution(
    rows: Sequence[_Row],
) -> Tuple[float, List[Tuple[int, float, float, float]]]:
    """(makespan, [(proc, compute, redistribution, idle), ...])."""
    makespan = max((r.finish for r in rows), default=0.0)
    compute: Dict[int, float] = {}
    redist: Dict[int, float] = {}
    for r in rows:
        for p in r.processors:
            compute[p] = compute.get(p, 0.0) + (r.finish - r.exec_start)
            redist[p] = redist.get(p, 0.0) + (r.exec_start - r.start)
    out = []
    for p in sorted(set(compute) | set(redist)):
        c = compute.get(p, 0.0)
        d = redist.get(p, 0.0)
        out.append((p, c, d, max(0.0, makespan - c - d)))
    return makespan, out


def _heatmap_grid(
    rows: Sequence[_Row], makespan: float, bins: int = _HEATMAP_BINS
) -> Tuple[List[int], Dict[int, List[float]]]:
    """Busy fraction per (processor, time bin) in [0, 1]."""
    procs = sorted({p for r in rows for p in r.processors})
    grid: Dict[int, List[float]] = {p: [0.0] * bins for p in procs}
    if makespan <= 0.0 or not procs:
        return procs, grid
    width = makespan / bins
    for r in rows:
        if r.finish <= r.start:
            continue
        lo = max(0, min(bins - 1, int(r.start / width)))
        hi = max(0, min(bins - 1, int((r.finish - 1e-12) / width)))
        for b in range(lo, hi + 1):
            b_start, b_end = b * width, (b + 1) * width
            overlap = min(r.finish, b_end) - max(r.start, b_start)
            if overlap <= 0.0:
                continue
            frac = overlap / width
            for p in r.processors:
                grid[p][b] = min(1.0, grid[p][b] + frac)
    return procs, grid


# ---------------------------------------------------------------------------
# section renderers (each returns an HTML fragment)
# ---------------------------------------------------------------------------


def _tile(label: str, value: str, hint: str = "") -> str:
    hint_html = f'<div class="hint">{_esc(hint)}</div>' if hint else ""
    return (
        '<div class="tile"><div class="tile-label">'
        f"{_esc(label)}</div><div class=\"tile-value\">{_esc(value)}</div>"
        f"{hint_html}</div>"
    )


def _render_tiles(
    events: Sequence[TraceEvent],
    rows: Sequence[_Row],
    decisions: Sequence[PlacementDecision],
    makespan: float,
    attribution: Sequence[Tuple[int, float, float, float]],
) -> str:
    tiles = [_tile("Trace events", str(len(events)))]
    if rows:
        num_procs = len({p for r in rows for p in r.processors})
        busy = sum(c + d for _, c, d, _ in attribution)
        total = num_procs * makespan
        tiles.append(_tile("Makespan", _fmt(makespan, 6), "time units"))
        tiles.append(_tile("Tasks", str(len(rows))))
        tiles.append(_tile("Processors", str(num_procs)))
        tiles.append(
            _tile(
                "Utilization",
                f"{busy / total:.1%}" if total > 0 else "n/a",
                "busy / (P × makespan)",
            )
        )
    if decisions:
        contested = sum(
            1 for d in decisions if d.regret != float("inf")
        )
        tiles.append(
            _tile(
                "Decisions",
                str(len(decisions)),
                f"{contested} contested",
            )
        )
    hits = sum(1 for ev in events if ev.name == ev_types.CACHE_HIT)
    misses = sum(1 for ev in events if ev.name == ev_types.CACHE_MISS)
    if hits or misses:
        warm = sum(
            1
            for ev in events
            if ev.name == ev_types.CACHE_WARM_START
            and ev.fields.get("adopted")
        )
        hint = f"{hits} hits / {misses} misses"
        if warm:
            hint += f", {warm} warm starts"
        tiles.append(
            _tile(
                "Cache hit rate",
                f"{hits / (hits + misses):.1%}",
                hint,
            )
        )
    considered = bound = dom = 0
    for ev in events:
        if ev.name == ev_types.PRUNE_STATS:
            considered += int(ev.fields.get("considered", 0))
            bound += int(ev.fields.get("bound_pruned", 0))
            dom += int(ev.fields.get("dominance_pruned", 0))
    pruned = bound + dom
    if considered or pruned:
        tiles.append(
            _tile(
                "Probe prune rate",
                f"{pruned / (considered + pruned):.1%}",
                f"{considered} considered, {bound} bound, {dom} dominance",
            )
        )
    online_latencies = []
    max_depth = 0
    for ev in events:
        if ev.name == ev_types.ONLINE_EVENT:
            online_latencies.append(float(ev.fields.get("latency_s", 0.0)))
            max_depth = max(max_depth, int(ev.fields.get("queue_depth", 0)))
    if online_latencies:
        ordered = sorted(online_latencies)
        rank = max(0, math.ceil(0.95 * len(ordered)) - 1)
        p95 = ordered[min(rank, len(ordered) - 1)]
        placed = sum(1 for ev in events if ev.name == ev_types.JOB_PLACED)
        rejected = sum(1 for ev in events if ev.name == ev_types.JOB_REJECTED)
        tiles.append(
            _tile(
                "Online p95 latency",
                f"{p95 * 1e3:.2f} ms",
                f"{len(online_latencies)} events, {placed} placed, "
                f"{rejected} rejected, max queue depth {max_depth}",
            )
        )
    return f'<div class="tiles">{"".join(tiles)}</div>'


def _render_heatmap(
    rows: Sequence[_Row], makespan: float, source: str
) -> str:
    if not rows or makespan <= 0.0:
        return (
            '<p class="empty">No task intervals in this trace — run with '
            "<code>--trace</code> (and optionally replay) to record "
            "them.</p>"
        )
    procs, grid = _heatmap_grid(rows, makespan)
    bins = _HEATMAP_BINS
    label_w, cell_w = 44, 16
    cell_h = 18 if len(procs) <= 16 else (12 if len(procs) <= 32 else 8)
    plot_w, plot_h = bins * cell_w, len(procs) * cell_h
    svg_w, svg_h = label_w + plot_w + 8, plot_h + 26
    parts = [
        f'<svg class="heatmap" width="{svg_w}" height="{svg_h}" '
        f'viewBox="0 0 {svg_w} {svg_h}" role="img" '
        'aria-label="processor utilization heatmap">'
    ]
    label_every = 1 if len(procs) <= 16 else (4 if len(procs) <= 48 else 8)
    width = makespan / bins
    for i, p in enumerate(procs):
        y = i * cell_h
        if i % label_every == 0:
            parts.append(
                f'<text class="ax" x="{label_w - 6}" '
                f'y="{y + cell_h / 2 + 3:.0f}" text-anchor="end">'
                f"P{p}</text>"
            )
        for b in range(bins):
            frac = grid[p][b]
            if frac <= 0.0:
                cls = "q-"
            else:
                cls = f"q{min(len(_SEQ_RAMP) - 1, int(frac * len(_SEQ_RAMP)))}"
            t0, t1 = b * width, (b + 1) * width
            parts.append(
                f'<rect class="hm {cls}" x="{label_w + b * cell_w}" '
                f'y="{y}" width="{cell_w - 1}" height="{cell_h - 1}">'
                f"<title>P{p}, t {_fmt(t0)}–{_fmt(t1)}: "
                f"{frac:.0%} busy</title></rect>"
            )
    for frac_t, anchor in ((0.0, "start"), (0.5, "middle"), (1.0, "end")):
        x = label_w + frac_t * plot_w
        parts.append(
            f'<text class="ax" x="{x:.0f}" y="{plot_h + 16}" '
            f'text-anchor="{anchor}">t={_fmt(frac_t * makespan, 5)}</text>'
        )
    parts.append("</svg>")
    legend = (
        '<div class="seq-legend"><span class="ax-label">idle</span>'
        + "".join(
            f'<span class="sw q{i}"></span>'
            for i in range(len(_SEQ_RAMP))
        )
        + '<span class="ax-label">100% busy</span></div>'
    )
    return (
        f'<p class="subtitle">source: {_esc(source)}; '
        f"{bins} time bins</p>{''.join(parts)}{legend}"
    )


def _render_attribution(
    attribution: Sequence[Tuple[int, float, float, float]], makespan: float
) -> str:
    if not attribution or makespan <= 0.0:
        return '<p class="empty">No task intervals to attribute.</p>'
    legend = (
        '<div class="legend">'
        '<span><span class="sw s1"></span>compute</span>'
        '<span><span class="sw s2"></span>redistribution</span>'
        '<span><span class="sw s3"></span>idle</span></div>'
    )
    bars = []
    for p, c, d, i in attribution:
        segs = []
        for cls, val, label in (
            ("s1", c, "compute"),
            ("s2", d, "redistribution"),
            ("s3", i, "idle"),
        ):
            pct = 100.0 * val / makespan
            if pct <= 0.0:
                continue
            segs.append(
                f'<div class="seg {cls}" style="width:{pct:.3f}%">'
                f"<span class=\"tip\">P{p} {label}: {_fmt(val, 5)} "
                f"({pct:.1f}%)</span></div>"
            )
        busy_pct = 100.0 * (c + d) / makespan
        bars.append(
            f'<div class="bar-row"><span class="bar-label">P{p}</span>'
            f'<div class="bar">{"".join(segs)}</div>'
            f'<span class="bar-val">{busy_pct:.1f}%</span></div>'
        )
    table_rows = "".join(
        f"<tr><td>P{p}</td><td>{_fmt(c, 6)}</td><td>{_fmt(d, 6)}</td>"
        f"<td>{_fmt(i, 6)}</td><td>{(c + d) / makespan:.1%}</td></tr>"
        for p, c, d, i in attribution
    )
    table = (
        "<details><summary>Table view</summary>"
        '<table class="num"><thead><tr><th>proc</th><th>compute</th>'
        "<th>redistribution</th><th>idle</th><th>busy</th></tr></thead>"
        f"<tbody>{table_rows}</tbody></table></details>"
    )
    return (
        '<p class="subtitle">each bar spans one makespan; the right-hand '
        "number is the processor's busy share</p>"
        f"{legend}<div class=\"bars\">{''.join(bars)}</div>{table}"
    )


def _render_regret(decisions: Sequence[PlacementDecision]) -> str:
    if not decisions:
        return (
            '<p class="empty">No <code>placement_decision</code> events — '
            "re-run with <code>--explain --trace</code> to record "
            "provenance.</p>"
        )
    ranked = rank_regrets(decisions, _MAX_REGRET_ROWS)
    contested = sum(1 for d in decisions if d.regret != float("inf"))
    if not ranked:
        return (
            '<p class="empty">All decisions were forced (no feasible '
            "alternative hole existed), so the regret list is empty.</p>"
        )
    rows = []
    for d in ranked:
        w = d.placement
        ru = d.runner_up
        rows.append(
            f"<tr><td>{_esc(d.task)}</td><td>{_esc(d.run or '—')}</td>"
            f"<td>{d.width}</td><td>{_esc(_procs(w.processors))}</td>"
            f"<td>{_fmt(w.start, 6)}</td><td>{_fmt(w.finish, 6)}</td>"
            f"<td>{_fmt(d.regret, 5)}</td>"
            f"<td>{_esc(_procs(ru.processors) if ru else '—')}</td></tr>"
        )
    cap_note = (
        f"top {len(ranked)} of {contested} contested decisions "
        f"({len(decisions) - contested} forced decisions excluded)"
    )
    return (
        f'<p class="subtitle">{_esc(cap_note)} — smallest regret first: '
        "these placements would flip under the smallest cost-model or "
        "bandwidth change</p>"
        '<table class="num"><thead><tr><th>task</th><th>run</th>'
        "<th>width</th><th>placed on</th><th>start</th><th>finish</th>"
        "<th>regret</th><th>runner-up procs</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _render_decision(d: PlacementDecision) -> str:
    w = d.placement if 0 <= d.winner < len(d.candidates) else None
    summary = (
        f"<code>{_esc(d.task)}</code> × {d.width} → "
        f"{_esc(_procs(w.processors) if w else '?')} "
        f"[{_fmt(w.start, 5) if w else '?'}, "
        f"{_fmt(w.finish, 5) if w else '?'}] · "
        f"regret {_fmt(d.regret, 4)} · "
        f"{len(d.candidates)} candidates ({d.pruned} beyond prune bound)"
    )
    shown = d.candidates[:_MAX_CANDIDATE_ROWS]
    rows = []
    for idx, c in enumerate(shown):
        won = c.outcome == WON
        mark = "✓ " if won else ""
        rows.append(
            f'<tr class="{"won" if won else ""}">'
            f"<td>{idx}</td><td>{_fmt(c.tau, 5)}</td>"
            f"<td>{mark}{_esc(c.outcome)}</td>"
            f"<td>{_esc(_procs(c.processors))}</td>"
            f"<td>{_fmt(c.start, 5)}</td><td>{_fmt(c.exec_start, 5)}</td>"
            f"<td>{_fmt(c.finish, 5)}</td><td>{_fmt(c.margin, 4)}</td>"
            f"<td>{_fmt(c.resident_bytes / 1e6, 4)}</td>"
            f"<td>{_fmt(c.comm_time, 4)}</td></tr>"
        )
    cap = (
        f'<p class="subtitle">showing first {len(shown)} of '
        f"{len(d.candidates)} candidates</p>"
        if len(d.candidates) > len(shown)
        else ""
    )
    return (
        f"<details><summary>{summary}</summary>{cap}"
        '<table class="num"><thead><tr><th>#</th><th>τ</th>'
        "<th>outcome</th><th>processors</th><th>start</th>"
        "<th>exec start</th><th>finish</th><th>margin</th>"
        "<th>resident MB</th><th>comm</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table></details>"
    )


def _render_provenance(decisions: Sequence[PlacementDecision]) -> str:
    if not decisions:
        return (
            '<p class="empty">No provenance recorded — re-run with '
            "<code>--explain --trace</code>.</p>"
        )
    by_run: Dict[str, List[PlacementDecision]] = {}
    for d in decisions:
        by_run.setdefault(d.run or "(unlabeled run)", []).append(d)
    sections = []
    for run in sorted(by_run):
        ds = by_run[run]
        shown = ds[:_MAX_DECISIONS_PER_RUN]
        cap = (
            f'<p class="subtitle">showing first {len(shown)} of '
            f"{len(ds)} decisions</p>"
            if len(ds) > len(shown)
            else ""
        )
        body = "".join(_render_decision(d) for d in shown)
        sections.append(
            f"<details><summary><strong>{_esc(run)}</strong> — "
            f"{len(ds)} decisions</summary>{cap}{body}</details>"
        )
    return (
        '<p class="subtitle">✓ marks the winning probe (the committed '
        "placement); margin is how much later a candidate would have "
        "finished</p>" + "".join(sections)
    )


# ---------------------------------------------------------------------------
# page assembly
# ---------------------------------------------------------------------------


def _css() -> str:
    seq_light = "\n".join(
        f"  --seq-{i}: {hx};" for i, hx in enumerate(_SEQ_RAMP)
    )
    seq_dark = "\n".join(
        f"  --seq-{i}: {hx};" for i, hx in enumerate(reversed(_SEQ_RAMP))
    )
    seq_classes = "\n".join(
        f".hm.q{i} {{ fill: var(--seq-{i}); }} "
        f".sw.q{i} {{ background: var(--seq-{i}); }}"
        for i in range(len(_SEQ_RAMP))
    )
    dark_vars = f"""
  color-scheme: dark;
  --surface: #1a1a19; --page: #0d0d0d;
  --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
  --grid: #2c2c2a; --axis: #383835;
  --border: rgba(255,255,255,0.10);
  --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
{seq_dark}"""
    return f"""
:root {{
  color-scheme: light;
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
{seq_light}
}}
@media (prefers-color-scheme: dark) {{
  :root:where(:not([data-theme="light"])) {{{dark_vars}
  }}
}}
:root[data-theme="dark"] {{{dark_vars}
}}
* {{ box-sizing: border-box; }}
body {{
  margin: 0; padding: 24px; background: var(--page); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}}
main {{ max-width: 960px; margin: 0 auto; }}
h1 {{ font-size: 20px; margin: 0 0 4px; }}
h2 {{ font-size: 15px; margin: 0 0 8px; }}
section {{
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 20px; margin: 16px 0;
  overflow-x: auto;
}}
.subtitle, .hint, .ax-label {{ color: var(--ink-2); font-size: 12px; }}
.subtitle {{ margin: 0 0 10px; }}
.empty {{ color: var(--muted); }}
code {{ font-size: 12px; }}
.tiles {{ display: flex; flex-wrap: wrap; gap: 12px; }}
.tile {{
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 16px; min-width: 120px;
}}
.tile-label {{ color: var(--ink-2); font-size: 12px; }}
.tile-value {{ font-size: 22px; }}
svg.heatmap text.ax {{ fill: var(--muted); font-size: 10px; }}
.hm.q- {{ fill: var(--surface); stroke: var(--grid); stroke-width: 0.5; }}
{seq_classes}
.seq-legend {{ display: flex; align-items: center; gap: 2px; margin-top: 8px; }}
.seq-legend .sw {{ width: 14px; height: 10px; display: inline-block; }}
.seq-legend .ax-label {{ margin: 0 6px; }}
.legend {{ display: flex; gap: 16px; margin-bottom: 10px; color: var(--ink-2);
  font-size: 12px; }}
.legend .sw, .legend span {{ display: inline-flex; align-items: center; gap: 6px; }}
.sw {{ width: 10px; height: 10px; border-radius: 2px; display: inline-block; }}
.sw.s1 {{ background: var(--series-1); }}
.sw.s2 {{ background: var(--series-2); }}
.sw.s3 {{ background: var(--series-3); }}
.bars {{ display: grid; gap: 4px; }}
.bar-row {{ display: flex; align-items: center; gap: 8px; }}
.bar-label {{ width: 36px; text-align: right; color: var(--muted);
  font-size: 11px; font-variant-numeric: tabular-nums; }}
.bar-val {{ width: 48px; color: var(--ink-2); font-size: 11px;
  font-variant-numeric: tabular-nums; }}
.bar {{ flex: 1; display: flex; gap: 2px; height: 14px; }}
.seg {{ position: relative; border-radius: 2px; min-width: 1px; }}
.seg:last-child {{ border-radius: 2px 4px 4px 2px; }}
.seg.s1 {{ background: var(--series-1); }}
.seg.s2 {{ background: var(--series-2); }}
.seg.s3 {{ background: var(--series-3); }}
.seg .tip {{
  display: none; position: absolute; left: 0; top: 18px; z-index: 2;
  background: var(--surface); color: var(--ink); border: 1px solid
  var(--border); border-radius: 4px; padding: 2px 8px; white-space: nowrap;
  font-size: 11px;
}}
.seg:hover .tip {{ display: block; }}
table {{ border-collapse: collapse; margin: 8px 0; font-size: 12px; }}
th {{ text-align: left; color: var(--ink-2); font-weight: 600; }}
th, td {{ padding: 3px 10px 3px 0; border-bottom: 1px solid var(--grid); }}
table.num td {{ font-variant-numeric: tabular-nums; }}
tr.won td {{ font-weight: 600; }}
details {{ margin: 6px 0; }}
summary {{ cursor: pointer; color: var(--ink); }}
summary:hover {{ color: var(--series-1); }}
footer {{ color: var(--muted); font-size: 12px; margin-top: 24px; }}
"""


def render_dashboard(
    events: Sequence[TraceEvent],
    *,
    title: str = "Schedule explainability dashboard",
) -> str:
    """Render the full dashboard page; returns the HTML as a string."""
    rows, source = _extract_rows(events)
    decisions = _extract_decisions(events)
    makespan, attribution = _attribution(rows)
    sections = [
        _render_tiles(events, rows, decisions, makespan, attribution),
        "<section><h2>Processor utilization</h2>"
        + _render_heatmap(rows, makespan, source)
        + "</section>",
        "<section><h2>Makespan attribution</h2>"
        + _render_attribution(attribution, makespan)
        + "</section>",
        "<section><h2>Regret list — closest decisions</h2>"
        + _render_regret(decisions)
        + "</section>",
        "<section><h2>Decision provenance</h2>"
        + _render_provenance(decisions)
        + "</section>",
    ]
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, '
        'initial-scale=1">\n'
        f"<title>{_esc(title)}</title>\n<style>{_css()}</style>\n"
        "</head>\n<body>\n<main>\n"
        f"<h1>{_esc(title)}</h1>\n"
        '<p class="subtitle">static, self-contained report — rendered by '
        "<code>python -m repro.obs dashboard</code> from a trace "
        "JSONL</p>\n" + "\n".join(sections) + "\n<footer>repro.obs — "
        "locality-conscious scheduling reproduction</footer>\n"
        "</main>\n</body>\n</html>\n"
    )


def write_dashboard(
    events: Sequence[TraceEvent],
    path: Union[str, Path],
    *,
    title: str = "Schedule explainability dashboard",
) -> Path:
    """Render and write the dashboard; returns the output path."""
    out = Path(path)
    out.write_text(render_dashboard(events, title=title), encoding="utf-8")
    return out
