"""Speedup models and per-task execution-time profiles.

A *malleable* task's execution time is ``et(t, p) = et(t, 1) / S(p)`` where
``S`` is a speedup function. This package provides the speedup families used
by the paper and its baselines:

* :class:`DowneySpeedup` — Downey's two-parameter model ``(A, sigma)`` used
  for all synthetic experiments (Figs 4–6).
* :class:`AmdahlSpeedup` — classic serial-fraction model, used to synthesize
  application task profiles (Figs 8–11).
* :class:`LinearSpeedup` — ideal scaling, used by the paper's Fig 3 worked
  example.
* :class:`TableSpeedup` — an explicitly profiled ``p -> time`` table, used by
  the Fig 1/2 worked examples and available for user-measured profiles.

:class:`ExecutionProfile` binds a sequential time to a model and answers the
queries the schedulers need: ``time(p)``, ``gain(p)``, and ``pbest(P)`` (the
least processor count achieving the minimum execution time).
"""

from repro.speedup.base import SpeedupModel
from repro.speedup.downey import DowneySpeedup
from repro.speedup.amdahl import AmdahlSpeedup
from repro.speedup.linear import LinearSpeedup
from repro.speedup.table import TableSpeedup
from repro.speedup.profiles import ExecutionProfile

__all__ = [
    "SpeedupModel",
    "DowneySpeedup",
    "AmdahlSpeedup",
    "LinearSpeedup",
    "TableSpeedup",
    "ExecutionProfile",
]
