#!/usr/bin/env python
"""Bring your own profiles: measured time tables and custom workloads.

Shows the workflow a downstream user follows for their own application:

1. express each stage's measured execution times as a profile table (or an
   analytic Amdahl/Downey model where no measurements exist);
2. wire the stages into a TaskGraph with real data volumes;
3. schedule, inspect the allocation LoC-MPS chose, and persist the
   workload as JSON for later runs.

Run:  python examples/custom_speedup.py
"""

import tempfile
from pathlib import Path

from repro import (
    Cluster,
    LocMpsScheduler,
    TaskGraph,
    load_graph,
    save_graph,
    validate_schedule,
)
from repro.speedup import AmdahlSpeedup, DowneySpeedup, ExecutionProfile

MB = 1e6


def build_video_pipeline() -> TaskGraph:
    """A four-stage analytics pipeline with mixed profile sources."""
    g = TaskGraph("video-analytics")

    # 'decode' was profiled on 1/2/4/8 nodes — use the raw table.
    g.add_task(
        "decode",
        ExecutionProfile.from_table({1: 120.0, 2: 70.0, 4: 45.0, 8: 38.0}),
        stage="ingest",
    )
    # 'detect' is a data-parallel CNN pass — near-linear, model it.
    g.add_task("detect", ExecutionProfile(AmdahlSpeedup(0.03), 300.0))
    # 'track' has limited parallelism; Downey with low average parallelism.
    g.add_task("track", ExecutionProfile(DowneySpeedup(A=6, sigma=1.0), 90.0))
    # 'report' is serial.
    g.add_task("report", ExecutionProfile(AmdahlSpeedup(1.0), 10.0))

    g.add_edge("decode", "detect", 800 * MB)
    g.add_edge("detect", "track", 120 * MB)
    g.add_edge("track", "report", 5 * MB)
    return g


def main() -> None:
    graph = build_video_pipeline()
    cluster = Cluster(num_processors=8, bandwidth=125 * MB)

    schedule = LocMpsScheduler().schedule(graph, cluster)
    validate_schedule(schedule, graph)

    print(f"makespan: {schedule.makespan:.1f}s\n")
    print("chosen allocation and placement:")
    for name in graph.topological_order():
        p = schedule[name]
        print(
            f"  {name:>8}: {p.width} proc(s) {p.processors}, "
            f"[{p.start:7.1f}, {p.finish:7.1f})"
        )

    # Persist the workload; a later session reloads the identical graph.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "pipeline.json"
        save_graph(graph, path)
        reloaded = load_graph(path)
        again = LocMpsScheduler().schedule(reloaded, cluster)
        assert again.makespan == schedule.makespan
        print(f"\nworkload round-tripped through {path.name}; "
              f"schedule reproduced exactly.")


if __name__ == "__main__":
    main()
