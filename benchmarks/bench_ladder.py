"""Probe-ladder micro-benchmark: eager vs lazy candidate materialization.

The LoCBS hole scan probes start times drawn from the chart's release
ladder. The admissible bound usually closes the scan within a handful of
probes, so the scan consumes the ladder lazily
(:meth:`ProcessorTimeline.release_times_after`) instead of materializing
the full :meth:`release_times` list per placement: eager materialization
costs O(ladder length) per probe site, the lazy generator O(consumed
prefix). This benchmark measures that scaling on deep-DAG-shaped charts of
growing depth — the deep-synthetic schedule tiled along the time axis, so
the ladder grows while the structure stays realistic — and asserts the two
ladders yield identical values.
"""

from __future__ import annotations

import time
from itertools import chain, islice

from repro.cluster import MYRINET_2GBPS, Cluster
from repro.perf.hotpath import deep_dag
from repro.schedule import ProcessorTimeline
from repro.schedulers import get_scheduler

from benchmarks.conftest import emit

#: ladder prefix consumed per probe site — the order of magnitude the
#: admissible bound leaves alive (BENCH_hotpath full-scale records ~10
#: candidates entered per placement before the scan closes)
DEPTH = 4

#: time-axis tilings of the base schedule: ladder lengths grow ~50 -> ~3000
TILINGS = (1, 8, 64)

REPS = 200


def _deep_chart(tiles: int) -> ProcessorTimeline:
    """The deep-synthetic schedule replayed *tiles* times end to end."""
    graph = deep_dag(6, 8, seed=12)
    cluster = Cluster(num_processors=32, bandwidth=MYRINET_2GBPS)
    schedule = get_scheduler("locmps").schedule(graph, cluster)
    span = schedule.makespan + 1.0
    tl = ProcessorTimeline(cluster.processors)
    placements = sorted(schedule, key=lambda pt: (pt.start, pt.name))
    for k in range(tiles):
        shift = k * span
        for p in placements:
            tl.reserve(p.processors, p.start + shift, p.finish + shift)
    return tl


def _per_site(arm, bases) -> float:
    t0 = time.perf_counter()
    total = 0.0
    for _ in range(REPS):
        for b in bases:
            total += arm(b)
    elapsed = time.perf_counter() - t0
    assert total >= 0.0
    return elapsed / (REPS * len(bases))


def test_lazy_ladder_vs_eager_materialization(run_once):
    lines = [f"probe-ladder materialization (depth {DEPTH}, {REPS} reps)"]
    longest = None
    for tiles in TILINGS:
        tl = _deep_chart(tiles)
        releases = tl.release_times(-1.0)
        assert len(releases) > DEPTH
        # probe sites spread over the whole ladder: early bases see the
        # longest remaining tails, where eager materialization is worst
        bases = [-1.0] + releases[:: max(1, len(releases) // 64)]

        # identity: the lazy ladder is the eager list, value for value
        for b in bases:
            eager_ladder = [b] + tl.release_times(b)
            lazy_ladder = chain((b,), tl.release_times_after(b))
            assert list(islice(lazy_ladder, DEPTH)) == eager_ladder[:DEPTH]
            assert tl.release_count_after(b) == len(eager_ladder) - 1

        def eager_arm(b):
            total = 0.0
            for tau in ([b] + tl.release_times(b))[:DEPTH]:
                total += tau
            return total

        def lazy_arm(b):
            total = 0.0
            ladder = chain((b,), tl.release_times_after(b))
            for tau in islice(ladder, DEPTH):
                total += tau
            return total

        eager_us = _per_site(eager_arm, bases) * 1e6
        lazy_us = _per_site(lazy_arm, bases) * 1e6
        lines.append(
            f"  ladder {len(releases):5d}: eager {eager_us:7.2f}us/site, "
            f"lazy {lazy_us:7.2f}us/site ({eager_us / lazy_us:5.2f}x)"
        )
        longest = (eager_us, lazy_us, lazy_arm, bases)

    emit("\n".join(lines))
    eager_us, lazy_us, lazy_arm, bases = longest
    # the asymptotic claim: on a long ladder, consuming a short prefix
    # must not pay for materializing the tail
    assert lazy_us < eager_us, (
        f"lazy ladder slower than eager on the longest chart "
        f"({lazy_us:.2f}us vs {eager_us:.2f}us per site)"
    )
    # pytest-benchmark record for the shipped (lazy) path
    run_once(lambda: sum(lazy_arm(b) for b in bases))
