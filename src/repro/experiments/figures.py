"""Result container shared by the per-figure experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.report import format_series_table

__all__ = ["FigureResult"]


@dataclass
class FigureResult:
    """One regenerated paper figure: a labelled family of per-P series."""

    figure: str
    title: str
    proc_counts: List[int]
    #: the paper's y-axis: relative performance vs LoC-MPS (or whatever the
    #: figure plots); ``{scheme: [value per P]}``
    series: Dict[str, List[float]]
    #: optional second panel (e.g. scheduling times for Figs 6b/10)
    sched_times: Optional[Dict[str, List[float]]] = None
    notes: List[str] = field(default_factory=list)

    def text(self) -> str:
        """Render the figure's data as aligned text tables."""
        parts = [
            format_series_table(
                f"{self.figure}: {self.title}",
                self.proc_counts,
                self.series,
            )
        ]
        if self.sched_times is not None:
            parts.append(
                format_series_table(
                    f"{self.figure} (scheduling times, seconds)",
                    self.proc_counts,
                    self.sched_times,
                    value_format="{:.3g}",
                )
            )
        parts.extend(self.notes)
        return "\n\n".join(parts)
