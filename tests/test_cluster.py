"""Cluster model."""

import pytest

from repro.cluster import (
    Cluster,
    FAST_ETHERNET_100MBPS,
    GIGABIT_ETHERNET,
    MYRINET_2GBPS,
)


class TestConstruction:
    def test_defaults(self):
        c = Cluster(num_processors=8)
        assert c.bandwidth == FAST_ETHERNET_100MBPS
        assert c.overlap is True
        assert c.processors == tuple(range(8))

    def test_rejects_zero_processors(self):
        with pytest.raises(ValueError):
            Cluster(num_processors=0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            Cluster(num_processors=2, bandwidth=0.0)

    def test_frozen(self):
        c = Cluster(num_processors=2)
        with pytest.raises(AttributeError):
            c.num_processors = 4


class TestBandwidthConstants:
    def test_fast_ethernet_bytes(self):
        assert FAST_ETHERNET_100MBPS == pytest.approx(12.5e6)

    def test_myrinet_bytes(self):
        assert MYRINET_2GBPS == pytest.approx(250e6)

    def test_gigabit(self):
        assert GIGABIT_ETHERNET == pytest.approx(125e6)


class TestAggregateBandwidth:
    def test_min_rule(self):
        c = Cluster(num_processors=16, bandwidth=100.0)
        assert c.aggregate_bandwidth(4, 8) == 400.0
        assert c.aggregate_bandwidth(8, 4) == 400.0

    def test_single_pair(self):
        c = Cluster(num_processors=16, bandwidth=100.0)
        assert c.aggregate_bandwidth(1, 1) == 100.0

    def test_rejects_zero_width(self):
        c = Cluster(num_processors=4)
        with pytest.raises(ValueError):
            c.aggregate_bandwidth(0, 4)


class TestCopies:
    def test_with_overlap(self):
        c = Cluster(num_processors=4)
        c2 = c.with_overlap(False)
        assert c2.overlap is False
        assert c.overlap is True
        assert c2.num_processors == 4

    def test_with_processors(self):
        c = Cluster(num_processors=4, bandwidth=99.0)
        c2 = c.with_processors(32)
        assert c2.num_processors == 32
        assert c2.bandwidth == 99.0
