"""Extension: on-line rescheduling under increasing noise.

The paper's future-work run-time framework, benchmarked: as execution
noise grows, deviation-triggered replanning with pinned state should stay
competitive with (and under heavy noise beat) blindly executing the static
plan.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.experiments.report import format_series_table
from repro.sim import LognormalNoise, OnlineRescheduler
from repro.utils.mathx import geo_mean
from repro.workloads import synthetic_dag

SIGMAS = [0.1, 0.3, 0.5]
SEEDS = [1, 2, 3, 4]


def test_online_rescheduling(run_once):
    graph = synthetic_dag(16, ccr=0.4, amax=32, sigma=1.0, seed=21)
    cluster = Cluster(num_processors=8)

    def run():
        ratios = []  # online / static per sigma (geo-mean over seeds)
        replans = []
        for sigma in SIGMAS:
            per_seed = []
            total_replans = 0
            for seed in SEEDS:
                report = OnlineRescheduler(
                    graph,
                    cluster,
                    noise=LognormalNoise(sigma, sigma),
                    seed=seed,
                    deviation_threshold=0.10,
                ).run()
                per_seed.append(report.makespan / report.static_makespan)
                total_replans += report.replans
            ratios.append(geo_mean(per_seed))
            replans.append(total_replans / len(SEEDS))
        return ratios, replans

    ratios, replans = run_once(run)
    print()
    print(
        format_series_table(
            "extension: on-line replanning, online/static makespan ratio "
            "(rows are 10*sigma)",
            [int(10 * s) for s in SIGMAS],
            {"online/static": ratios, "mean replans": replans},
        )
    )
    # replanning never blows up the makespan, and it actually replans
    assert all(r <= 1.10 for r in ratios)
    assert replans[-1] >= 1.0  # heavy noise triggers replans
    # heavier noise should not make replanning *less* attractive
    assert ratios[-1] <= ratios[0] + 0.08
