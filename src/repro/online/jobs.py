"""Job records for the online daemon, and per-job task namespacing.

Every submitted job carries its own :class:`~repro.graph.TaskGraph` whose
task names are prefixed ``"<job id>/"`` — the live chart, the placement
index and the cost cache all key by task name, so namespacing is what
lets many instances of the same application template coexist on one
machine (and lets :meth:`CostCache.release_graph` evict exactly one job's
state when it finishes).

The *un*-namespaced template graph is kept alongside: allocation is
decided once per submission on the shared template object, so repeated
templates hit the cost cache's graph memo — and, when the daemon is given
a :class:`~repro.cache.service.CachedScheduleService`, the
content-addressed schedule cache — instead of paying a cold allocation
walk per arrival.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import ScheduleError
from repro.graph import TaskGraph
from repro.schedule import PlacedTask

__all__ = ["Job", "namespace_graph"]


def namespace_graph(template: TaskGraph, job_id: str) -> TaskGraph:
    """A copy of *template* with every task renamed ``"<job_id>/<task>"``."""
    if "/" in job_id:
        raise ScheduleError(f"job id {job_id!r} must not contain '/'")
    out = TaskGraph(f"{job_id}/{template.name}")
    for t in template.tasks():
        task = template.task(t)
        out.add_task(f"{job_id}/{t}", task.profile, **task.attrs)
    for u, v in template.edges():
        out.add_edge(f"{job_id}/{u}", f"{job_id}/{v}", template.data_volume(u, v))
    return out


@dataclass
class Job:
    """One job moving through the daemon: submitted → placed → finished.

    ``allocation`` maps *namespaced* task names to processor widths. It
    may be preset (rigid SWF jobs arrive with their width) or left
    ``None`` for the daemon's allocator to decide at submit time; either
    way it is recorded on the job so the cold-rebuild differential arm
    replays the identical vector.
    """

    job_id: str
    template: str
    graph: TaskGraph  #: namespaced per-job graph (lives on the chart)
    template_graph: TaskGraph  #: shared un-namespaced graph (allocation key)
    arrival: float
    allocation: Optional[Dict[str, int]] = None
    #: runtime state, filled in by the daemon
    placements: List[PlacedTask] = field(default_factory=list)
    placed_at: Optional[float] = None  #: sim time the splice happened
    start: Optional[float] = None  #: earliest placed start
    finish: Optional[float] = None  #: latest placed finish

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ScheduleError(
                f"job {self.job_id!r} has negative arrival {self.arrival}"
            )

    @property
    def width(self) -> int:
        """Widest task width (admission's notion of the job's size)."""
        if self.allocation:
            return max(self.allocation.values())
        return 1

    def record_placements(self, placements: List[PlacedTask]) -> None:
        self.placements = placements
        self.start = min(p.start for p in placements)
        self.finish = max(p.finish for p in placements)
