"""Bottleneck attribution: where did the makespan's processor-time go?

Decomposes the 2-D chart of a schedule into the three buckets the paper
argues about — per processor and in total:

* **compute**: the execution rectangles (``exec_duration`` of each
  placement);
* **redistribution**: destination-side inbound communication occupancy
  (``exec_start - start``; nonzero only on non-overlapping clusters,
  where the paper charges inbound redistribution against the destination
  processors);
* **idle**: everything else, defined as the remainder — so the identity
  ``compute + redistribution + idle == P * makespan`` holds *exactly* by
  construction (up to float summation noise), which the acceptance tests
  rely on.

:func:`extract_critical_chain` complements the decomposition with the
*realized* critical chain: the back-to-back sequence of placements that
actually pinned the makespan, each annotated with whether it constrained
its successor through **data** (the successor waited for its output) or
through a **resource** (the successor waited for its processors). The
chain is read off the committed schedule alone — realized per-edge
communication times are taken from ``schedule.edge_comm_times`` — so it
works for any scheduler's output, not just LoCBS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.graph import TaskGraph
from repro.schedule.types import PlacedTask, Schedule

__all__ = [
    "ProcessorAttribution",
    "AttributionReport",
    "ChainLink",
    "attribute_makespan",
    "extract_critical_chain",
]

_TOL = 1e-6


@dataclass(frozen=True)
class ProcessorAttribution:
    """One processor's share of the chart: compute / redistribution / idle."""

    processor: int
    compute: float
    redistribution: float
    idle: float

    @property
    def busy(self) -> float:
        return self.compute + self.redistribution

    def to_dict(self) -> Dict[str, Any]:
        return {
            "processor": self.processor,
            "compute": self.compute,
            "redistribution": self.redistribution,
            "idle": self.idle,
        }


@dataclass
class AttributionReport:
    """The full decomposition of one schedule's processor-time."""

    makespan: float
    per_processor: List[ProcessorAttribution]

    @property
    def num_processors(self) -> int:
        return len(self.per_processor)

    @property
    def compute(self) -> float:
        return sum(a.compute for a in self.per_processor)

    @property
    def redistribution(self) -> float:
        return sum(a.redistribution for a in self.per_processor)

    @property
    def idle(self) -> float:
        return sum(a.idle for a in self.per_processor)

    @property
    def total(self) -> float:
        """``P * makespan`` — what the three buckets sum to."""
        return self.num_processors * self.makespan

    @property
    def dominant(self) -> str:
        """The largest bucket: ``"compute"``, ``"redistribution"``, ``"idle"``."""
        buckets = {
            "compute": self.compute,
            "redistribution": self.redistribution,
            "idle": self.idle,
        }
        return max(sorted(buckets), key=lambda k: buckets[k])

    def fractions(self) -> Dict[str, float]:
        """Bucket shares of the total processor-time (all 0 when empty)."""
        total = self.total
        if total <= 0:
            return {"compute": 0.0, "redistribution": 0.0, "idle": 0.0}
        return {
            "compute": self.compute / total,
            "redistribution": self.redistribution / total,
            "idle": self.idle / total,
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "makespan": self.makespan,
            "num_processors": self.num_processors,
            "compute": self.compute,
            "redistribution": self.redistribution,
            "idle": self.idle,
            "fractions": self.fractions(),
            "per_processor": [a.to_dict() for a in self.per_processor],
        }

    def text(self) -> str:
        f = self.fractions()
        return (
            f"makespan {self.makespan:.3f} on P={self.num_processors}: "
            f"{f['compute']:.1%} compute, "
            f"{f['redistribution']:.1%} redistribution, "
            f"{f['idle']:.1%} idle (dominant: {self.dominant})"
        )


def attribute_makespan(schedule: Schedule) -> AttributionReport:
    """Decompose *schedule* into per-processor compute/redistribution/idle.

    Idle is defined as the per-processor remainder, so
    ``report.compute + report.redistribution + report.idle`` equals
    ``P * makespan`` exactly (modulo float summation order).
    """
    makespan = schedule.makespan
    compute: Dict[int, float] = {p: 0.0 for p in schedule.cluster.processors}
    redist: Dict[int, float] = {p: 0.0 for p in schedule.cluster.processors}
    for placed in schedule:
        comm = placed.exec_start - placed.start
        for p in placed.processors:
            compute[p] += placed.exec_duration
            redist[p] += comm
    per_proc = [
        ProcessorAttribution(
            processor=p,
            compute=compute[p],
            redistribution=redist[p],
            idle=makespan - compute[p] - redist[p],
        )
        for p in schedule.cluster.processors
    ]
    return AttributionReport(makespan=makespan, per_processor=per_proc)


@dataclass(frozen=True)
class ChainLink:
    """One placement on the realized critical chain.

    ``binds`` says how this task constrained the *next* chain element:
    ``"data"`` (the successor waited for this task's output to arrive),
    ``"resource"`` (the successor waited for this task to release its
    processors), or ``"makespan"`` for the final task, whose finish *is*
    the makespan.
    """

    task: str
    start: float
    finish: float
    binds: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "task": self.task,
            "start": self.start,
            "finish": self.finish,
            "binds": self.binds,
        }


def _binding_parent(
    schedule: Schedule,
    graph: TaskGraph,
    placed: PlacedTask,
) -> Optional[str]:
    """The predecessor whose output arrival pinned *placed*'s start."""
    if schedule.cluster.overlap:
        bound, arrival_of = placed.exec_start, True
    else:
        bound, arrival_of = placed.start, False
    best: Optional[tuple] = None
    for u in graph.predecessors(placed.name):
        pu = schedule.get(u)
        if pu is None:
            continue
        arrival = pu.finish
        if arrival_of:
            arrival += schedule.edge_comm_times.get((u, placed.name), 0.0)
        if arrival >= bound - _TOL:
            key = (arrival, u)
            if best is None or key > best:
                best = key
    return best[1] if best is not None else None


def _binding_blocker(schedule: Schedule, placed: PlacedTask) -> Optional[str]:
    """The task whose processor release pinned *placed*'s start."""
    best: Optional[tuple] = None
    procs = set(placed.processors)
    for other in schedule:
        if other.name == placed.name:
            continue
        if abs(other.finish - placed.start) > _TOL:
            continue
        if procs.isdisjoint(other.processors):
            continue
        key = (other.finish, other.name)
        if best is None or key > best:
            best = key
    return best[1] if best is not None else None


def extract_critical_chain(
    schedule: Schedule, graph: TaskGraph
) -> List[ChainLink]:
    """The realized chain of placements that determined the makespan.

    Walks backward from the last-finishing task: at each step the binding
    constraint is either a graph predecessor whose realized output
    arrival matches the task's start (a *data* link) or a placement whose
    finish released the task's processors (a *resource* link — exactly
    the waits LoCBS records as pseudo-edges). The walk stops at a task
    that started unconstrained. Returned in time order (chain head
    first); empty for an empty schedule.
    """
    placements = list(schedule)
    if not placements:
        return []
    tail = max(placements, key=lambda p: (p.finish, p.name))
    chain: List[ChainLink] = [
        ChainLink(tail.name, tail.start, tail.finish, "makespan")
    ]
    visited = {tail.name}
    cur = tail
    while True:
        parent = _binding_parent(schedule, graph, cur)
        kind = "data"
        if parent is None:
            parent = _binding_blocker(schedule, cur)
            kind = "resource"
        if parent is None or parent in visited:
            break
        visited.add(parent)
        cur = schedule[parent]
        chain.append(ChainLink(cur.name, cur.start, cur.finish, kind))
    chain.reverse()
    return chain
