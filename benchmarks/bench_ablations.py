"""Ablation benchmarks for the design choices called out in DESIGN.md.

Not paper figures — these quantify the knobs of the implementation:

* look-ahead depth (1 / 5 / 20): the bounded look-ahead is what escapes
  local minima (paper Section III-E);
* locality awareness in LoCBS: the paper's headline idea;
* edge-growth policy: our width-alignment jump vs the paper's literal
  one-processor increments.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, FAST_ETHERNET_100MBPS
from repro.experiments.report import format_series_table
from repro.schedulers import LocMpsScheduler
from repro.utils.mathx import geo_mean
from repro.workloads import synthetic_suite

PROCS = [4, 8, 16]


def suite():
    return synthetic_suite(
        3, min_tasks=10, max_tasks=30, ccr=0.5, amax=32, sigma=1.0, seed=99
    )


def sweep(graphs, scheduler_factory):
    out = []
    for p in PROCS:
        cluster = Cluster(num_processors=p, bandwidth=FAST_ETHERNET_100MBPS)
        out.append(
            geo_mean(
                scheduler_factory().schedule(g, cluster).makespan
                for g in graphs
            )
        )
    return out


def test_ablation_lookahead_depth(run_once):
    graphs = suite()

    def run():
        return {
            f"depth={d}": sweep(
                graphs, lambda d=d: LocMpsScheduler(look_ahead_depth=d)
            )
            for d in (1, 5, 20)
        }

    series = run_once(run)
    print()
    print(
        format_series_table(
            "ablation: look-ahead depth (geo-mean makespan, CCR=0.5)",
            PROCS,
            series,
        )
    )
    # deeper look-ahead never loses on average
    for i in range(len(PROCS)):
        assert series["depth=20"][i] <= series["depth=1"][i] + 1e-6


def test_ablation_locality_awareness(run_once):
    graphs = suite()

    def run():
        return {
            "locality-aware": sweep(graphs, LocMpsScheduler),
            "locality-blind": sweep(
                graphs, lambda: LocMpsScheduler(locality_blind=True)
            ),
        }

    series = run_once(run)
    print()
    print(
        format_series_table(
            "ablation: locality-conscious placement (geo-mean makespan)",
            PROCS,
            series,
        )
    )
    aware = geo_mean(series["locality-aware"])
    blind = geo_mean(series["locality-blind"])
    assert aware <= blind + 1e-6


def test_ablation_edge_growth_policy(run_once):
    graphs = suite()

    def run():
        return {
            "align": sweep(graphs, lambda: LocMpsScheduler(edge_growth="align")),
            "increment": sweep(
                graphs, lambda: LocMpsScheduler(edge_growth="increment")
            ),
        }

    series = run_once(run)
    print()
    print(
        format_series_table(
            "ablation: edge growth align vs paper's increment "
            "(geo-mean makespan)",
            PROCS,
            series,
        )
    )
    # alignment should not lose overall (it is why we deviate)
    assert geo_mean(series["align"]) <= geo_mean(series["increment"]) * 1.02
