#!/usr/bin/env python
"""Strassen matrix multiplication: locality, problem size, and noisy replay.

Demonstrates three things on the paper's second application DAG:

1. how LoC-MPS exploits block-cyclic data locality (non-local bytes under
   its placement vs a locality-unaware one);
2. how problem size changes the verdict on pure data-parallelism (the paper
   Fig 9 observation);
3. replaying the chosen schedule through the discrete-event engine with
   stochastic noise — the library's stand-in for real execution.

Run:  python examples/strassen_pipeline.py
"""

from repro import Cluster, get_scheduler, validate_schedule
from repro.cluster import MYRINET_2GBPS
from repro.schedule.metrics import total_nonlocal_bytes
from repro.sim import ExecutionEngine, LognormalNoise
from repro.workloads import strassen_graph


def locality_study(n: int, procs: int) -> None:
    graph = strassen_graph(n)
    cluster = Cluster(num_processors=procs, bandwidth=MYRINET_2GBPS)
    print(f"\n--- Strassen {n}x{n} on {procs} processors ---")
    for name in ("locmps", "cpr", "data"):
        schedule = get_scheduler(name).schedule(graph, cluster)
        validate_schedule(schedule, graph)
        moved = total_nonlocal_bytes(schedule, graph)
        print(
            f"{name:>8}: makespan {schedule.makespan:7.3f}s, "
            f"{moved / 1e6:8.1f} MB crossed the network"
        )


def noisy_replay(n: int, procs: int, trials: int = 5) -> None:
    graph = strassen_graph(n)
    cluster = Cluster(num_processors=procs, bandwidth=MYRINET_2GBPS)
    schedule = get_scheduler("locmps").schedule(graph, cluster)
    print(f"\n--- noisy replay of the LoC-MPS schedule ({n}x{n}, P={procs}) ---")
    print(f"planned makespan: {schedule.makespan:.3f}s")
    for trial in range(trials):
        engine = ExecutionEngine(
            graph,
            cluster,
            noise=LognormalNoise(sigma_compute=0.1, sigma_network=0.2),
            seed=trial,
            use_single_port=True,
        )
        report = engine.execute(schedule, record_events=False)
        print(
            f"  trial {trial}: achieved {report.makespan:.3f}s "
            f"(slowdown {report.slowdown:.3f}x)"
        )


def main() -> None:
    # paper Fig 9: at 1024^2 the half-size tasks scale poorly and DATA
    # suffers; at 4096^2 scalability improves and DATA recovers.
    locality_study(1024, procs=8)
    locality_study(4096, procs=8)
    noisy_replay(1024, procs=8)


if __name__ == "__main__":
    main()
