"""DATA — the pure data-parallel baseline.

Every task runs on all ``P`` processors, one task at a time, in topological
order. Because consecutive tasks use the identical full-machine block-cyclic
layout, no redistribution is ever needed — the paper's stated reason DATA
"incurs no communication and re-distribution costs". Its weakness is
imperfect task scalability: with sub-linear speedups, running a 1-second
task on 128 processors wastes almost the whole machine.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cluster import Cluster
from repro.exceptions import ScheduleError
from repro.graph import TaskGraph
from repro.graph.pseudo import ScheduleDAG
from repro.schedule import PlacedTask, Schedule
from repro.schedulers.base import Scheduler, SchedulingResult

__all__ = ["DataParallelScheduler"]


class DataParallelScheduler(Scheduler):
    """All tasks on all processors, serialized in topological order."""

    name = "data"

    def run(self, graph: TaskGraph, cluster: Cluster) -> SchedulingResult:
        order = graph.topological_order()
        if not order:
            raise ScheduleError("cannot schedule an empty task graph")
        P = cluster.num_processors
        procs = cluster.processors

        schedule = Schedule(cluster, scheduler=self.name)
        vertex_weights: Dict[str, float] = {}
        edge_weights: Dict[Tuple[str, str], float] = {}
        clock = 0.0
        for t in order:
            et = graph.et(t, P)
            placement = PlacedTask(
                name=t, start=clock, exec_start=clock, finish=clock + et,
                processors=procs,
            )
            schedule.place(placement)
            vertex_weights[t] = et
            clock += et
        for u, v in graph.edges():
            # identical full-machine layouts: zero redistribution
            edge_weights[(u, v)] = 0.0
            schedule.edge_comm_times[(u, v)] = 0.0

        sdag = ScheduleDAG(graph, vertex_weights, edge_weights)
        # Record the full serialization so CP(G') equals the makespan.
        for a, b in zip(order, order[1:]):
            sdag.add_pseudo_edge(a, b)
        return SchedulingResult(schedule=schedule, sdag=sdag)
