"""Schedule quality metrics and terminal rendering."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.graph import TaskGraph
from repro.schedule.types import Schedule
from repro.schedule.attribution import (  # noqa: F401 — re-exported here
    AttributionReport,
    ChainLink,
    ProcessorAttribution,
    attribute_makespan,
    extract_critical_chain,
)

__all__ = [
    "busy_time",
    "utilization",
    "total_comm_time",
    "total_idle_time",
    "total_nonlocal_bytes",
    "gantt_ascii",
    "schedule_summary",
    "AttributionReport",
    "ChainLink",
    "ProcessorAttribution",
    "attribute_makespan",
    "extract_critical_chain",
]


def busy_time(schedule: Schedule) -> float:
    """Total busy processor-time: the filled area of the 2-D chart."""
    return sum(p.duration * p.width for p in schedule)


def utilization(schedule: Schedule) -> float:
    """Busy processor-time over total processor-time, in ``[0, 1]``.

    An empty or zero-length schedule has utilization 0.
    """
    makespan = schedule.makespan
    if makespan <= 0:
        return 0.0
    return busy_time(schedule) / (schedule.cluster.num_processors * makespan)


def total_idle_time(schedule: Schedule) -> float:
    """Idle processor-time (the 2-D chart's unfilled area).

    An empty or zero-length schedule has no chart and hence no idle area
    (0, matching :func:`utilization`'s handling of the same edge case).
    """
    makespan = schedule.makespan
    if makespan <= 0:
        return 0.0
    return schedule.cluster.num_processors * makespan - busy_time(schedule)


def total_comm_time(schedule: Schedule) -> float:
    """Sum of the actual per-edge redistribution times."""
    return sum(schedule.edge_comm_times.values())


def total_nonlocal_bytes(schedule: Schedule, graph: TaskGraph) -> float:
    """Bytes that actually crossed the network under this placement."""
    from repro.redistribution.blockcyclic import nonlocal_volume

    total = 0.0
    for u, v in graph.edges():
        pu, pv = schedule.get(u), schedule.get(v)
        if pu is None or pv is None:
            continue
        volume = graph.data_volume(u, v)
        if volume > 0:
            total += nonlocal_volume(pu.processors, pv.processors, volume)
    return total


def gantt_ascii(
    schedule: Schedule, *, width: int = 78, max_procs: int = 32
) -> str:
    """A coarse ASCII Gantt chart (one row per processor).

    Intended for examples and debugging; long schedules are binned to
    *width* columns and only the first *max_procs* processors are drawn.
    """
    makespan = schedule.makespan
    if makespan <= 0:
        return "(empty schedule)"
    cols = max(10, width - 8)
    scale = makespan / cols
    procs = schedule.cluster.processors[:max_procs]
    grid: Dict[int, List[str]] = {p: ["."] * cols for p in procs}
    for idx, placed in enumerate(sorted(schedule, key=lambda p: p.start)):
        mark = chr(ord("A") + idx % 26)
        lo = int(placed.start / scale)
        hi = max(lo + 1, int(placed.finish / scale + 0.999))
        for p in placed.processors:
            if p in grid:
                for c in range(lo, min(hi, cols)):
                    grid[p][c] = mark
    lines = [f"makespan = {makespan:g}  ({schedule.scheduler or 'schedule'})"]
    for p in procs:
        lines.append(f"P{p:>3} |" + "".join(grid[p]) + "|")
    if schedule.cluster.num_processors > max_procs:
        lines.append(f"  ... ({schedule.cluster.num_processors - max_procs} more processors)")
    legend = ", ".join(
        f"{chr(ord('A') + i % 26)}={p.name}"
        for i, p in enumerate(sorted(schedule, key=lambda p: p.start))
    )
    lines.append("tasks: " + legend)
    return "\n".join(lines)


def schedule_summary(schedule: Schedule, graph: Optional[TaskGraph] = None) -> str:
    """A one-paragraph textual summary of the schedule."""
    parts = [
        f"scheduler={schedule.scheduler or '?'}",
        f"tasks={len(schedule)}",
        f"P={schedule.cluster.num_processors}",
        f"makespan={schedule.makespan:.3f}",
        f"utilization={utilization(schedule):.1%}",
        f"comm_time={total_comm_time(schedule):.3f}",
    ]
    if schedule.scheduling_time:
        parts.append(f"sched_wallclock={schedule.scheduling_time * 1e3:.1f}ms")
    if graph is not None:
        parts.append(f"nonlocal_MB={total_nonlocal_bytes(schedule, graph) / 1e6:.2f}")
    return "  ".join(parts)
