"""Shared experiment machinery: scheduler x processor-count sweeps.

The paper's headline metric is *relative performance*: the ratio of the
makespan produced by LoC-MPS to that of a given algorithm on the same
processor count (values below one mean the algorithm trails LoC-MPS).
Across a suite of graphs, ratios are aggregated with the geometric mean —
the standard choice for normalized performance ratios.
"""

from __future__ import annotations

import math
import pickle
import shutil
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.cluster import Cluster
from repro.exceptions import ExperimentError
from repro.graph import TaskGraph
from repro.obs.tracer import Tracer
from repro.schedule import validate_schedule
from repro.schedulers import get_scheduler
from repro.utils.mathx import geo_mean

__all__ = ["ComparisonResult", "run_comparison", "relative_performance"]


@dataclass
class ComparisonResult:
    """Raw sweep output: makespans and scheduling times per scheme/graph/P."""

    schemes: List[str]
    proc_counts: List[int]
    graph_names: List[str]
    #: ``makespans[scheme][g][p_idx]``
    makespans: Dict[str, List[List[float]]]
    #: ``sched_times[scheme][g][p_idx]`` (wall-clock seconds)
    sched_times: Dict[str, List[List[float]]]
    overlap: bool = True

    def mean_makespan(self, scheme: str) -> List[float]:
        """Geometric-mean makespan of *scheme* per processor count."""
        per_graph = self.makespans[scheme]
        return [
            geo_mean(per_graph[g][i] for g in range(len(self.graph_names)))
            for i in range(len(self.proc_counts))
        ]

    def mean_sched_time(self, scheme: str) -> List[float]:
        """Arithmetic-mean scheduling time of *scheme* per processor count."""
        per_graph = self.sched_times[scheme]
        n = len(self.graph_names)
        return [
            sum(per_graph[g][i] for g in range(n)) / n
            for i in range(len(self.proc_counts))
        ]

    def relative_to(self, reference: str = "locmps") -> Dict[str, List[float]]:
        """Paper-style relative performance per scheme and processor count.

        ``ratio = makespan(reference) / makespan(scheme)``, geometric-mean
        over graphs; the reference scheme is identically 1.
        """
        if reference not in self.makespans:
            raise ExperimentError(f"reference scheme {reference!r} not in results")
        ref = self.makespans[reference]
        out: Dict[str, List[float]] = {}
        for scheme in self.schemes:
            cur = self.makespans[scheme]
            series: List[float] = []
            for i in range(len(self.proc_counts)):
                ratios = [
                    ref[g][i] / cur[g][i] for g in range(len(self.graph_names))
                ]
                series.append(geo_mean(ratios))
            out[scheme] = series
        return out


def relative_performance(
    reference_makespan: float, scheme_makespan: float
) -> float:
    """Single-pair paper-style ratio (reference / scheme)."""
    if scheme_makespan <= 0:
        raise ExperimentError(
            f"scheme makespan must be > 0, got {scheme_makespan}"
        )
    return reference_makespan / scheme_makespan


def _run_cell(
    args: Tuple[TaskGraph, int, float, bool, Sequence[str], bool]
) -> List[Tuple[str, float, float]]:
    """Schedule one (graph, P) cell with every scheme (serial fast path)."""
    graph, P, bandwidth, overlap, schemes, validate = args
    cluster = Cluster(num_processors=P, bandwidth=bandwidth, overlap=overlap)
    out: List[Tuple[str, float, float]] = []
    for scheme in schemes:
        t0 = time.perf_counter()
        schedule = get_scheduler(scheme).schedule(graph, cluster)
        elapsed = time.perf_counter() - t0
        if validate:
            validate_schedule(schedule, graph)
        out.append((scheme, schedule.makespan, elapsed))
    return out


@dataclass(frozen=True)
class _SweepContext:
    """Everything a sweep worker needs, shipped once per worker.

    The graphs are the heavy part of a sweep cell; shipping them through
    the :class:`~repro.parallel.SchedulerPool` initializer means each
    worker deserializes them once, and the per-cell work items shrink to
    a pair of indices.
    """

    graphs: Tuple[TaskGraph, ...]
    proc_counts: Tuple[int, ...]
    schemes: Tuple[str, ...]
    bandwidth: float
    overlap: bool = True
    validate: bool = True
    factory: Optional[Callable[[str], object]] = field(default=None)
    #: enable decision provenance on schedulers that support it
    explain: bool = False
    #: shared disk tier of the schedule cache (None = no caching); each
    #: worker keeps its own in-memory LRU on top of this directory
    cache_dir: Optional[str] = None


def _schedule_cell(
    graph: TaskGraph,
    cluster: Cluster,
    schemes: Sequence[str],
    *,
    validate: bool,
    factory: Callable[[str], object],
    tracer: Optional[Tracer] = None,
    explain: bool = False,
    cache=None,
) -> List[Tuple[str, float, float]]:
    """Schedule every scheme of one (graph, P) cell (instrumented path).

    With a :class:`~repro.cache.ScheduleCache`, each scheme is looked up
    first — a hit reports the *stored* scheduling time (the cold run's
    wall-clock), so sweep tables are identical with the cache on or off —
    and every miss is stored back, turning duplicate sweep cells and
    repeated CLI runs into hits.
    """
    traced = tracer is not None and tracer.enabled
    rows: List[Tuple[str, float, float]] = []
    for scheme in schemes:
        key = None
        if cache is not None:
            from repro.cache import request_fingerprint, scheme_config

            key = request_fingerprint(graph, cluster, scheme_config(scheme))
            hit = cache.lookup(key, graph=graph if validate else None)
            if hit is not None:
                if traced:
                    tracer.event(
                        "experiment_cell",
                        graph=graph.name,
                        P=cluster.num_processors,
                        scheme=scheme,
                        makespan=hit.makespan,
                        elapsed_s=hit.scheduling_time,
                        cached=True,
                    )
                rows.append((scheme, hit.makespan, hit.scheduling_time))
                continue
        sched = factory(scheme)
        if traced:
            sched.tracer = tracer
        if explain and hasattr(sched, "explain"):
            sched.explain = True
        t0 = time.perf_counter()
        schedule = sched.schedule(graph, cluster)
        elapsed = time.perf_counter() - t0
        if validate:
            validate_schedule(schedule, graph)
        if cache is not None:
            cache.store(key, schedule, graph, mode="cold")
            # report the number the cache stored (scheduling_time, timed
            # inside Scheduler.schedule) so a later hit reproduces this
            # row bit-for-bit
            elapsed = schedule.scheduling_time
        if traced:
            tracer.event(
                "experiment_cell",
                graph=graph.name,
                P=cluster.num_processors,
                scheme=scheme,
                makespan=schedule.makespan,
                elapsed_s=elapsed,
            )
        rows.append((scheme, schedule.makespan, elapsed))
    return rows


def _run_cell_warm(env, gi: int, pi: int) -> List[Tuple[str, float, float]]:
    """Schedule one (graph, P) cell in a warm pool worker.

    ``env`` is the worker's :class:`~repro.parallel.WorkerEnv`; its
    context is the :class:`_SweepContext` the pool shipped at startup and
    its tracer is the worker's private spool (or the no-op tracer).
    Schedulers get the spool attached, so their decision events and the
    per-cell ``experiment_cell`` summaries reach the caller's tracer when
    the spools are merged after the sweep. When the context carries a
    ``cache_dir``, each worker lazily builds one
    :class:`~repro.cache.ScheduleCache` in ``env.state`` — private memory
    LRU, shared disk tier, so a cell one worker schedules becomes a disk
    hit for every other worker.
    """
    ctx: _SweepContext = env.context
    graph = ctx.graphs[gi]
    P = ctx.proc_counts[pi]
    cluster = Cluster(num_processors=P, bandwidth=ctx.bandwidth, overlap=ctx.overlap)
    cache = None
    if ctx.cache_dir is not None:
        cache = env.state.get("schedule_cache")
        if cache is None:
            from repro.cache import ScheduleCache

            cache = env.state["schedule_cache"] = ScheduleCache(
                cache_dir=ctx.cache_dir, tracer=env.tracer
            )
    return _schedule_cell(
        graph,
        cluster,
        ctx.schemes,
        validate=ctx.validate,
        factory=ctx.factory or get_scheduler,
        tracer=env.tracer,
        explain=ctx.explain,
        cache=cache,
    )


def run_comparison(
    graphs: Sequence[TaskGraph],
    schemes: Sequence[str],
    proc_counts: Sequence[int],
    *,
    bandwidth: float,
    overlap: bool = True,
    validate: bool = True,
    progress: bool = False,
    scheduler_factory: Optional[Callable[[str], object]] = None,
    workers: int = 1,
    chunksize: Optional[int] = None,
    tracer: Optional[Tracer] = None,
    explain: bool = False,
    cache: Union["object", str, Path, None] = None,
) -> ComparisonResult:
    """Sweep every scheme over every graph and processor count.

    Every produced schedule is checked by the independent validator unless
    ``validate=False`` (benchmarks disable it to time the schedulers alone).
    ``workers > 1`` fans the (graph, P) cells out over a
    :class:`~repro.parallel.SchedulerPool` of warm workers — graphs ship
    once via the pool initializer, cells stream back in completion order
    (so ``progress=True`` reports cells as they finish), and the merge
    into the result tables is index-keyed, hence deterministic regardless
    of completion order. *chunksize* groups that many cells per dispatch
    (default: :func:`~repro.parallel.default_chunksize`); per-cell
    scheduling times remain accurate because each cell is timed inside
    its worker.

    ``scheduler_factory`` may be any picklable callable — module-level
    functions, classes, ``functools.partial`` over picklable parts.
    Unpicklable factories (lambdas, closures) are rejected up front with
    an :class:`ExperimentError` when ``workers > 1``.

    *tracer* (optional) is attached to every scheduler instance (so
    instrumented schedulers record their decision events) and receives one
    ``experiment_cell`` event per (graph, P, scheme) run. With
    ``workers > 1`` each worker records to a private JSONL spool
    (:class:`~repro.obs.spool.SpoolTracer`); the spools are merged into
    *tracer* — ordered by timestamp, each event exactly once — before
    this function returns, *even when the sweep raises mid-run* (partial
    traces beat lost traces when debugging the failure).

    ``explain=True`` turns on decision provenance for every scheduler
    that supports it (``hasattr(sched, "explain")`` — currently
    LoC-MPS): each committed placement emits a ``placement_decision``
    trace event holding every candidate hole the LoCBS scan probed.
    Pair it with *tracer*, or the records die with the scheduler
    instances.

    *cache* plugs a content-addressed schedule cache into the sweep: a
    :class:`~repro.cache.ScheduleCache` instance or a cache directory
    (``str``/``Path``). Every (graph, P, scheme) cell is fingerprinted
    and looked up before scheduling; hits report the stored makespan and
    scheduling time (bit-identical tables, duplicate cells and repeated
    runs become free), misses are stored back. Only the default registry
    schedulers can be cached — a custom ``scheduler_factory`` changes
    results invisibly to the fingerprint and is rejected. With
    ``workers > 1`` the cache must have a disk tier (pass a directory or
    a ``ScheduleCache`` with ``cache_dir``): workers share entries
    through the directory, each with a private in-memory LRU.
    """
    if not graphs:
        raise ExperimentError("run_comparison needs at least one graph")
    if not schemes:
        raise ExperimentError("run_comparison needs at least one scheme")
    if not proc_counts:
        raise ExperimentError("run_comparison needs at least one processor count")
    if workers > 1 and scheduler_factory is not None:
        try:
            pickle.dumps(scheduler_factory)
        except Exception as exc:
            raise ExperimentError(
                "scheduler_factory must be picklable to cross worker "
                f"processes ({exc}); use a module-level callable or workers=1"
            ) from exc
    factory = scheduler_factory or get_scheduler

    cache_obj = None
    cache_dir: Optional[str] = None
    if cache is not None:
        if scheduler_factory is not None:
            raise ExperimentError(
                "cache= requires the default registry schedulers; results "
                "from a custom scheduler_factory cannot be fingerprinted"
            )
        from repro.cache import ScheduleCache

        if isinstance(cache, (str, Path)):
            cache_dir = str(cache)
            cache_obj = (
                ScheduleCache(cache_dir=cache_dir, tracer=tracer)
                if tracer is not None
                else ScheduleCache(cache_dir=cache_dir)
            )
        elif isinstance(cache, ScheduleCache):
            cache_obj = cache
            cache_dir = str(cache.cache_dir) if cache.cache_dir else None
        else:
            raise ExperimentError(
                f"cache= must be a ScheduleCache or a directory path, "
                f"got {type(cache).__name__}"
            )
        if workers > 1 and cache_dir is None:
            raise ExperimentError(
                "workers > 1 share the cache through its disk tier; pass a "
                "cache directory or a ScheduleCache with cache_dir set"
            )

    makespans: Dict[str, List[List[float]]] = {
        s: [[math.nan] * len(proc_counts) for _ in graphs] for s in schemes
    }
    sched_times: Dict[str, List[List[float]]] = {
        s: [[math.nan] * len(proc_counts) for _ in graphs] for s in schemes
    }

    cells = [
        (gi, pi, (graphs[gi], P, bandwidth, overlap, tuple(schemes), validate))
        for gi in range(len(graphs))
        for pi, P in enumerate(proc_counts)
    ]

    def record(gi: int, pi: int, rows: List[Tuple[str, float, float]]) -> None:
        for scheme, makespan, elapsed in rows:
            makespans[scheme][gi][pi] = makespan
            sched_times[scheme][gi][pi] = elapsed
            if progress:
                print(
                    f"  [{graphs[gi].name} P={proc_counts[pi]}] {scheme}: "
                    f"makespan={makespan:.3f} ({elapsed:.2f}s to schedule)",
                    file=sys.stderr,
                )

    if workers > 1:
        from repro.parallel import SchedulerPool

        ctx = _SweepContext(
            graphs=tuple(graphs),
            proc_counts=tuple(proc_counts),
            schemes=tuple(schemes),
            bandwidth=bandwidth,
            overlap=overlap,
            validate=validate,
            factory=scheduler_factory,
            explain=explain,
            cache_dir=cache_dir,
        )
        spool_dir = tempfile.mkdtemp(prefix="repro-spool-") if tracer else None
        pool = None
        try:
            items = [(gi, pi) for gi, pi, _ in cells]
            pool = SchedulerPool(workers, context=ctx, spool_dir=spool_dir)
            with pool:
                for idx, rows in pool.imap_unordered(
                    _run_cell_warm, items, chunksize=chunksize
                ):
                    gi, pi, _ = cells[idx]
                    record(gi, pi, rows)
        finally:
            # Merge whatever the workers spooled — on the clean path every
            # spool is complete and flushed (the pool is shut down), and on
            # a mid-sweep failure a partial trace still reaches *tracer*
            # before the spool directory is deleted.
            try:
                if tracer is not None and pool is not None:
                    pool.merge_spools(tracer)
            finally:
                if spool_dir is not None:
                    shutil.rmtree(spool_dir, ignore_errors=True)
    else:
        for gi, pi, args in cells:
            if (
                scheduler_factory is None
                and tracer is None
                and not explain
                and cache_obj is None
            ):
                record(gi, pi, _run_cell(args))
            else:
                graph, P, bw, ov, scheme_t, val = args
                cluster = Cluster(num_processors=P, bandwidth=bw, overlap=ov)
                rows = _schedule_cell(
                    graph,
                    cluster,
                    scheme_t,
                    validate=val,
                    factory=factory,
                    tracer=tracer,
                    explain=explain,
                    cache=cache_obj,
                )
                record(gi, pi, rows)

    return ComparisonResult(
        schemes=list(schemes),
        proc_counts=list(proc_counts),
        graph_names=[g.name for g in graphs],
        makespans=makespans,
        sched_times=sched_times,
        overlap=overlap,
    )
