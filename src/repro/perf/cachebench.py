"""Schedule-cache benchmarks → ``BENCH_cache.json``.

Measures the three serving paths of :mod:`repro.cache` on the
wide-synthetic P=64 acceptance suite (:func:`repro.perf.hotpath
.build_suites`):

``hit``
    One cold LoC-MPS run populates the cache; repeated identical
    requests are then served from the memory tier (and once from a
    fresh process-equivalent cache, i.e. the disk tier). Every hit is
    asserted **bit-identical** to the cold schedule via
    :func:`repro.perf.golden.schedule_digest`; the report records the
    cold-vs-hit latency ratio (``hit_speedup``, target >= 100x).
``warm``
    A near-neighbor graph (a few tasks' sequential times perturbed by
    5%) is scheduled cold and via a graph-delta warm start seeded from
    the cached original. Warm-start wall-clock — *including* the
    neighbor scan and cache round-trip — is compared against the cold
    LoC-MPS run on the same perturbed graph.
``replay``
    A Zipf-distributed submission stream over a pool of distinct
    graphs, replayed through a capacity-limited two-tier cache: the
    steady-state hit ratio under a realistic skewed workload,
    exercising LRU eviction and disk promotion.

The golden fingerprints are re-checked at the end — caching must never
change what the schedulers themselves produce. Run ``python -m
repro.perf cache`` (``--quick`` for the CI-sized variant) to
regenerate.
"""

from __future__ import annotations

import statistics
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.cache import CachedScheduleService, ScheduleCache, scheme_config
from repro.cluster import MYRINET_2GBPS, Cluster
from repro.graph import TaskGraph, graph_from_dict, graph_to_dict
from repro.perf.golden import GOLDEN_PATH, check_golden, schedule_digest
from repro.perf.hotpath import build_suites, wide_dag
from repro.perf.schema import BENCH_SCHEMA_VERSION
from repro.schedulers.locmps import LocMpsScheduler
from repro.utils.rng import as_generator

__all__ = [
    "SCHEMA",
    "perturb_graph",
    "run_hit_benchmark",
    "run_warm_benchmark",
    "run_zipf_replay",
    "run_cachebench",
]

SCHEMA = "repro.perf.cachebench/v1"


def perturb_graph(
    graph: TaskGraph,
    *,
    count: int = 3,
    factor: float = 1.05,
    name: Optional[str] = None,
) -> TaskGraph:
    """A copy of *graph* with *count* tasks' sequential times scaled.

    Perturbs the first *count* task names in sorted order — a
    deterministic few-vertex delta that changes the graph fingerprint
    (and those tasks' signatures) while leaving the topology intact,
    i.e. exactly the "resubmitted with refreshed profiling data" case
    graph-delta warm starts target.
    """
    doc = graph_to_dict(graph)
    chosen = set(sorted(t["name"] for t in doc["tasks"])[: max(0, count)])
    for tdoc in doc["tasks"]:
        if tdoc["name"] in chosen:
            tdoc["sequential_time"] = float(tdoc["sequential_time"]) * factor
    doc["name"] = name or f"{doc.get('name', 'graph')}-perturbed"
    return graph_from_dict(doc)


def _service(
    cache_dir: Union[str, Path],
    options: Optional[Dict[str, object]],
    *,
    capacity: int = 128,
) -> CachedScheduleService:
    cache = ScheduleCache(capacity=capacity, cache_dir=cache_dir)
    return CachedScheduleService(
        cache, scheme="locmps", scheduler_options=options
    )


def run_hit_benchmark(
    graph: TaskGraph,
    cluster: Cluster,
    options: Optional[Dict[str, object]],
    *,
    repeats: int = 20,
) -> Dict[str, object]:
    """Cold run once, then serve the same request *repeats* times."""
    with tempfile.TemporaryDirectory(prefix="cachebench-hit-") as tmp:
        service = _service(tmp, options)
        cold = service.schedule(graph, cluster)
        cold_digest = schedule_digest(cold.schedule)
        hit_latencies: List[float] = []
        identical = cold.outcome == "cold"
        for _ in range(repeats):
            res = service.schedule(graph, cluster)
            hit_latencies.append(res.latency_s)
            identical = (
                identical
                and res.outcome == "hit"
                and schedule_digest(res.schedule) == cold_digest
            )
        # a fresh cache over the same directory = another process
        # arriving later: the first lookup must come from the disk tier
        disk_service = _service(tmp, options)
        disk_res = disk_service.schedule(graph, cluster)
        identical = (
            identical
            and disk_res.outcome == "hit"
            and disk_service.cache.stats["disk_hits"] == 1
            and schedule_digest(disk_res.schedule) == cold_digest
        )
        hit_s = statistics.median(hit_latencies)
        return {
            "tasks": graph.num_tasks,
            "processors": cluster.num_processors,
            "config": scheme_config("locmps", options),
            "repeats": repeats,
            "cold_s": cold.latency_s,
            "cold_makespan": cold.schedule.makespan,
            "cold_digest": cold_digest,
            "hit_s": hit_s,
            "hit_min_s": min(hit_latencies),
            "hit_max_s": max(hit_latencies),
            "hit_disk_s": disk_res.latency_s,
            "hit_speedup": cold.latency_s / hit_s if hit_s > 0 else float("inf"),
            "bit_identical": identical,
        }


def run_warm_benchmark(
    graph: TaskGraph,
    cluster: Cluster,
    options: Optional[Dict[str, object]],
    *,
    perturb_count: int = 3,
    perturb_factor: float = 1.05,
) -> Dict[str, object]:
    """Cold vs warm-started LoC-MPS on a perturbed near-neighbor graph."""
    perturbed = perturb_graph(
        graph, count=perturb_count, factor=perturb_factor
    )
    # cold arm: plain scheduler, no cache anywhere near it
    cold_sched = LocMpsScheduler(**dict(options or {}))
    t0 = time.perf_counter()
    cold_schedule = cold_sched.schedule(perturbed, cluster)
    cold_s = time.perf_counter() - t0
    # warm arm: cache primed with the *original* graph, then the
    # perturbed one served through the neighbor-seeded service path
    with tempfile.TemporaryDirectory(prefix="cachebench-warm-") as tmp:
        service = _service(tmp, options)
        base = service.schedule(graph, cluster)
        warm = service.schedule(perturbed, cluster)
        scheduler_stats = dict(service.cache.stats)
    return {
        "tasks": perturbed.num_tasks,
        "processors": cluster.num_processors,
        "perturbed_tasks": perturb_count,
        "perturb_factor": perturb_factor,
        "base_outcome": base.outcome,
        "outcome": warm.outcome,  # "warm" iff the seed was bit-profitable
        "delta": warm.delta,
        "cold_s": cold_s,
        "cold_sched_s": cold_schedule.scheduling_time,
        "warm_s": warm.latency_s,  # includes neighbor scan + store
        "warm_sched_s": warm.schedule.scheduling_time,
        "warm_speedup": cold_s / warm.latency_s if warm.latency_s > 0 else float("inf"),
        "warm_beats_cold": warm.latency_s < cold_s,
        "cold_makespan": cold_schedule.makespan,
        "warm_makespan": warm.schedule.makespan,
        "cache_stats": scheduler_stats,
    }


def run_zipf_replay(
    *,
    num_graphs: int = 8,
    num_tasks: int = 24,
    processors: int = 16,
    requests: int = 60,
    zipf_a: float = 1.5,
    capacity: int = 4,
    seed: int = 2006,
    options: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Replay a Zipf-skewed submission stream through a small cache.

    ``capacity < num_graphs`` on purpose: the popular head of the
    distribution lives in the memory LRU, the tail spills to disk and
    gets promoted back — the steady-state shape of a real submission
    front end.
    """
    rng = as_generator(seed)
    pool = [
        wide_dag(num_tasks, seed=100 + i, name=f"replay-{i}")
        for i in range(num_graphs)
    ]
    cluster = Cluster(
        num_processors=processors, bandwidth=MYRINET_2GBPS, name="replay"
    )
    indices = [int((z - 1) % num_graphs) for z in rng.zipf(zipf_a, requests)]
    with tempfile.TemporaryDirectory(prefix="cachebench-zipf-") as tmp:
        service = _service(tmp, options, capacity=capacity)
        wall = 0.0
        for idx in indices:
            res = service.schedule(pool[idx], cluster)
            wall += res.latency_s
        snap = service.snapshot()
    distinct = len(set(indices))
    return {
        "num_graphs": num_graphs,
        "tasks_per_graph": num_tasks,
        "processors": processors,
        "requests": requests,
        "distinct_requested": distinct,
        "zipf_a": zipf_a,
        "capacity": capacity,
        "seed": seed,
        "wall_s": wall,
        "hit_ratio": snap["hits"] / requests if requests else 0.0,
        "best_possible_hit_ratio": (
            (requests - distinct) / requests if requests else 0.0
        ),
        "stats": snap,
    }


def run_cachebench(
    *,
    scale: str = "full",
    golden_path: Union[str, Path] = GOLDEN_PATH,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run every section and return the full ``BENCH_cache.json`` document."""
    spec = build_suites(scale)[0]  # wide-synthetic-P64, the acceptance suite
    graph = spec.graph_factory()[0]
    options = dict(spec.scheduler_kwargs or {})
    quick = scale == "quick"

    if progress is not None:
        progress(f"hit benchmark: {spec.name} (cold run, then hits) ...")
    hit = run_hit_benchmark(graph, spec.cluster, options)

    if progress is not None:
        progress("warm-start benchmark: perturbed neighbor vs cold ...")
    warm = run_warm_benchmark(graph, spec.cluster, options)

    if progress is not None:
        progress("zipf replay ...")
    replay = run_zipf_replay(
        num_graphs=6 if quick else 10,
        num_tasks=16 if quick else 32,
        requests=40 if quick else 120,
        capacity=3 if quick else 5,
    )

    if progress is not None:
        progress("checking golden fingerprints ...")
    golden_problems = check_golden(golden_path)

    return {
        "schema": SCHEMA,
        "schema_version": BENCH_SCHEMA_VERSION,
        "scale": scale,
        "suite": spec.name,
        "methodology": (
            "hit: one cold LoC-MPS run through CachedScheduleService "
            "populates the two-tier cache; the identical request is then "
            "served repeatedly from memory (median latency = hit_s) and "
            "once through a fresh cache over the same directory (disk "
            "tier, hit_disk_s). Every hit's placement digest must equal "
            "the cold run's (bit_identical); hit_speedup = cold_s / "
            "hit_s. warm: the same graph with a few sequential times "
            "perturbed is scheduled cold (plain LocMpsScheduler) and via "
            "the neighbor-seeded warm-start path; warm_s includes the "
            "neighbor scan and cache round-trip. replay: a Zipf stream "
            "over distinct graphs through a capacity-limited cache; "
            "hit_ratio counts served-from-cache requests. Golden "
            "fingerprints are re-checked afterwards — caching must not "
            "change scheduler output."
        ),
        "hit": hit,
        "warm": warm,
        "replay": replay,
        "golden_identical": not golden_problems,
        "golden_problems": golden_problems,
    }
