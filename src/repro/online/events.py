"""Deterministic priority event queue for the online daemon.

The daemon's whole correctness story — and the bit-identity of the
incremental/cold differential — rests on events firing in one reproducible
order. The queue orders by ``(time, kind priority, sequence number)``:

* at equal timestamps, :data:`~OnlineEventKind.JOB_FINISH` fires before
  :data:`~OnlineEventKind.REPLAN` fires before
  :data:`~OnlineEventKind.JOB_SUBMIT` — resources are released and the
  deferred queue drained before a simultaneous arrival is admitted;
* the sequence number breaks remaining ties in push order, so the queue
  never compares payloads (no reliance on dict/hash order anywhere —
  the ``PYTHONHASHSEED`` determinism test in
  ``tests/test_online_daemon.py`` holds the daemon to this).
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["OnlineEventKind", "OnlineEvent", "EventQueue"]


class OnlineEventKind(enum.IntEnum):
    """Daemon event kinds; the integer value IS the same-time priority."""

    JOB_FINISH = 0
    REPLAN = 1
    JOB_SUBMIT = 2
    JOB_START = 3


@dataclass(frozen=True)
class OnlineEvent:
    """One scheduled occurrence in the daemon's simulated time."""

    time: float
    kind: OnlineEventKind
    job_id: Optional[str] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OnlineEvent({self.time:.4f}, {self.kind.name}, {self.job_id!r})"


class EventQueue:
    """Min-heap of :class:`OnlineEvent` with the deterministic tie-break."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, OnlineEvent]] = []
        self._seq = 0

    def push(self, event: OnlineEvent) -> None:
        self._seq += 1
        heapq.heappush(
            self._heap, (event.time, int(event.kind), self._seq, event)
        )

    def pop(self) -> OnlineEvent:
        return heapq.heappop(self._heap)[3]

    def peek_time(self) -> float:
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
