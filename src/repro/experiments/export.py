"""Persisting experiment results (JSON and CSV).

Figure regenerations are expensive (minutes to hours in ``--full`` mode),
so their outputs should be storable and re-renderable without re-running:
:func:`figure_to_dict` / :func:`figure_from_dict` round-trip a
:class:`~repro.experiments.figures.FigureResult` through plain JSON, and
:func:`figure_to_csv` emits the per-P series as a spreadsheet-friendly
table.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.exceptions import ExperimentError
from repro.experiments.figures import FigureResult

__all__ = [
    "figure_to_dict",
    "figure_from_dict",
    "save_figure",
    "load_figure",
    "figure_to_csv",
]


def figure_to_dict(result: FigureResult) -> Dict[str, Any]:
    """JSON-serializable representation of *result*."""
    return {
        "figure": result.figure,
        "title": result.title,
        "proc_counts": list(result.proc_counts),
        "series": {k: list(v) for k, v in result.series.items()},
        "sched_times": (
            None
            if result.sched_times is None
            else {k: list(v) for k, v in result.sched_times.items()}
        ),
        "notes": list(result.notes),
    }


def figure_from_dict(doc: Dict[str, Any]) -> FigureResult:
    """Inverse of :func:`figure_to_dict` (validates series lengths)."""
    procs = [int(p) for p in doc["proc_counts"]]
    series = {k: [float(x) for x in v] for k, v in doc["series"].items()}
    for scheme, values in series.items():
        if len(values) != len(procs):
            raise ExperimentError(
                f"series {scheme!r} has {len(values)} values for "
                f"{len(procs)} processor counts"
            )
    sched = doc.get("sched_times")
    return FigureResult(
        figure=doc["figure"],
        title=doc["title"],
        proc_counts=procs,
        series=series,
        sched_times=(
            None
            if sched is None
            else {k: [float(x) for x in v] for k, v in sched.items()}
        ),
        notes=list(doc.get("notes", [])),
    )


def save_figure(result: FigureResult, path: Union[str, Path]) -> None:
    """Write *result* to *path* as JSON."""
    Path(path).write_text(json.dumps(figure_to_dict(result), indent=2))


def load_figure(path: Union[str, Path]) -> FigureResult:
    """Read a result written by :func:`save_figure`."""
    return figure_from_dict(json.loads(Path(path).read_text()))


def figure_to_csv(result: FigureResult) -> str:
    """The main series as CSV: one row per P, one column per scheme."""
    schemes = list(result.series)
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["P"] + schemes)
    for i, p in enumerate(result.proc_counts):
        writer.writerow([p] + [result.series[s][i] for s in schemes])
    return buf.getvalue()
