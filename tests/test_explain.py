"""Schedule explainability: provenance, attribution, metrics, dashboard."""

import json
import math

import pytest

from repro import Cluster, LocMpsScheduler, Tracer
from repro.cluster import MYRINET_2GBPS
from repro.obs import (
    MetricsRegistry,
    read_jsonl,
    registry_from_events,
    render_openmetrics,
    validate_openmetrics,
    write_jsonl,
)
from repro.obs.dashboard import render_dashboard, write_dashboard
from repro.perf.hotpath import wide_dag
from repro.schedule import attribute_makespan, extract_critical_chain
from repro.schedulers import (
    CandidateProbe,
    PlacementDecision,
    ProvenanceRecorder,
    rank_regrets,
)
from repro.schedulers.provenance import LOST, TOO_FEW_FREE, WON
from repro.sim import ExecutionEngine

from tests.helpers import build_random_graph


def _probe(outcome, margin, tau=0.0, procs=(0,), finish=1.0):
    infeasible = outcome in (TOO_FEW_FREE, "hole_too_short")
    return CandidateProbe(
        tau=tau,
        processors=() if infeasible else tuple(procs),
        start=math.inf if infeasible else tau,
        exec_start=math.inf if infeasible else tau,
        finish=math.inf if infeasible else finish,
        resident_bytes=0.0,
        comm_time=0.0,
        outcome=outcome,
        margin=margin,
    )


def explained_schedule(**kw):
    g = build_random_graph(12, seed=3, ccr_volume=10e6)
    c = Cluster(num_processors=4, bandwidth=12.5e6)
    sched = LocMpsScheduler(explain=True, **kw)
    return g, c, sched, sched.schedule(g, c)


class TestProvenanceRecords:
    def test_probe_round_trips_including_non_finite(self):
        p = _probe(TOO_FEW_FREE, math.inf, tau=2.5)
        d = p.to_dict()
        # non-finite floats serialize as null, never as bare Infinity
        json.loads(json.dumps(d, allow_nan=False))
        assert CandidateProbe.from_dict(d) == p

    def test_decision_round_trip_and_regret(self):
        d = PlacementDecision(
            task="t",
            width=2,
            ready_time=1.0,
            candidates=[
                _probe(WON, 0.0, tau=1.0),
                _probe(LOST, 0.75, tau=2.0),
                _probe(LOST, 0.25, tau=3.0),
                _probe(TOO_FEW_FREE, math.inf, tau=4.0),
            ],
            winner=0,
            run="g/P4/locmps",
        )
        assert d.placement.outcome == WON
        assert d.runner_up.margin == 0.25
        assert d.regret == 0.25
        back = PlacementDecision.from_dict(d.to_dict())
        assert back.task == d.task and back.regret == d.regret
        assert back.run == d.run

    def test_forced_decision_has_infinite_regret(self):
        d = PlacementDecision(
            task="t",
            width=1,
            ready_time=0.0,
            candidates=[_probe(WON, 0.0)],
            winner=0,
        )
        assert d.runner_up is None
        assert d.regret == float("inf")

    def test_rank_regrets_excludes_forced_and_sorts(self):
        def dec(name, margin):
            cands = [_probe(WON, 0.0)]
            if margin is not None:
                cands.append(_probe(LOST, margin))
            return PlacementDecision(
                task=name, width=1, ready_time=0.0, candidates=cands, winner=0
            )

        ds = [dec("a", 0.5), dec("b", None), dec("c", 0.1), dec("d", 0.1)]
        ranked = rank_regrets(ds, 10)
        assert [d.task for d in ranked] == ["c", "d", "a"]
        assert [d.task for d in rank_regrets(ds, 1)] == ["c"]

    def test_recorder_labels_and_lookup(self):
        rec = ProvenanceRecorder(label="g/P8/locmps")
        d = PlacementDecision(
            task="x",
            width=1,
            ready_time=0.0,
            candidates=[_probe(WON, 0.0)],
            winner=0,
        )
        rec.record(d)
        assert len(rec) == 1
        assert rec.decision_for("x").run == "g/P8/locmps"
        assert rec.decision_for("missing") is None


class TestExplainScheduler:
    def test_disabled_by_default(self):
        sched = LocMpsScheduler()
        assert sched.explain is False
        g = build_random_graph(8, seed=5)
        sched.schedule(g, Cluster(num_processors=4, bandwidth=12.5e6))
        assert sched.provenance is None

    def test_explain_does_not_change_the_schedule(self):
        g = build_random_graph(12, seed=3, ccr_volume=10e6)
        c = Cluster(num_processors=4, bandwidth=12.5e6)
        plain = LocMpsScheduler().schedule(g, c)
        explained = LocMpsScheduler(explain=True).schedule(g, c)
        assert explained.makespan == plain.makespan
        assert explained.allocation() == plain.allocation()

    def test_every_placement_has_a_matching_decision(self):
        g, c, sched, schedule = explained_schedule()
        rec = sched.provenance
        assert rec is not None and len(rec) == len(schedule)
        for placed in schedule:
            d = rec.decision_for(placed.name)
            assert d is not None
            w = d.placement
            assert w.outcome == WON and w.margin == 0.0
            assert w.processors == tuple(placed.processors)
            assert w.start == placed.start
            assert w.exec_start == placed.exec_start
            assert w.finish == placed.finish
            assert d.width == placed.width
            assert d.run  # run label stamped (graph/P/scheme)

    def test_acceptance_wide_synthetic_p64(self):
        # acceptance-scale shape: wide fork-join DAG on P=64
        g = wide_dag(20, seed=11)
        c = Cluster(num_processors=64, bandwidth=MYRINET_2GBPS)
        sched = LocMpsScheduler(explain=True, look_ahead_depth=4)
        schedule = sched.schedule(g, c)
        rec = sched.provenance
        assert len(rec) == g.num_tasks == len(schedule)
        for placed in schedule:
            w = rec.decision_for(placed.name).placement
            assert w.processors == tuple(placed.processors)
            assert w.finish == placed.finish
        # the wide middle layer contends: most decisions must be contested
        assert len(rec.regret_list(1000)) > 0

    def test_losing_probes_carry_finite_margins(self):
        _, _, sched, _ = explained_schedule()
        losers = [
            c
            for d in sched.provenance.decisions
            for c in d.candidates
            if c.outcome == LOST
        ]
        assert losers
        assert all(c.margin >= 0.0 and math.isfinite(c.margin) for c in losers)

    def test_pruning_does_not_change_explain_output(self):
        """Provenance keeps probing past the bound: losers keep true margins.

        The recording scan counts bound-closed probes in ``pruned`` but
        still times them, so every decision must list the same candidates
        probe-for-probe whether the bound-and-prune layer is on or off.
        """
        import repro.schedulers.locbs as locbs_mod

        g = build_random_graph(12, seed=3, ccr_volume=10e6)
        c = Cluster(num_processors=4, bandwidth=12.5e6)
        on = LocMpsScheduler(explain=True)
        on.schedule(g, c)
        prev = locbs_mod._PRUNING_ENABLED
        locbs_mod._PRUNING_ENABLED = False
        try:
            off = LocMpsScheduler(explain=True)
            off.schedule(g, c)
        finally:
            locbs_mod._PRUNING_ENABLED = prev
        assert len(on.provenance) == len(off.provenance)
        for d_on, d_off in zip(on.provenance.decisions, off.provenance.decisions):
            assert d_on.task == d_off.task
            assert d_on.winner == d_off.winner
            assert d_on.candidates == d_off.candidates
            # the arms may disagree only on how many probes the bound
            # *would* have closed (the neutral bound flags none)
            assert d_on.pruned >= d_off.pruned

    def test_placement_decision_events_reach_the_tracer(self):
        tr = Tracer()
        g = build_random_graph(10, seed=7, ccr_volume=10e6)
        c = Cluster(num_processors=4, bandwidth=12.5e6)
        sched = LocMpsScheduler(explain=True, tracer=tr)
        schedule = sched.schedule(g, c)
        evs = [e for e in tr.events if e.name == "placement_decision"]
        assert len(evs) == len(schedule)
        for e in evs:
            # strict-JSON serializable (no bare Infinity)
            json.loads(json.dumps(e.to_dict(), allow_nan=False))
            PlacementDecision.from_dict(e.fields)

    def test_workers_never_inherit_explain(self):
        sched = LocMpsScheduler(explain=True)
        assert "explain" not in sched._config_kwargs()


class TestAttribution:
    @pytest.mark.parametrize("overlap", [True, False])
    def test_identity_sums_to_p_times_makespan(self, overlap):
        g = build_random_graph(14, seed=9, ccr_volume=20e6)
        c = Cluster(num_processors=4, bandwidth=12.5e6, overlap=overlap)
        schedule = LocMpsScheduler().schedule(g, c)
        rep = attribute_makespan(schedule)
        assert rep.num_processors == 4
        total = rep.compute + rep.redistribution + rep.idle
        assert total == pytest.approx(rep.total, rel=1e-9)
        assert rep.total == pytest.approx(4 * schedule.makespan)
        fr = rep.fractions()
        assert sum(fr.values()) == pytest.approx(1.0)
        assert all(v >= 0.0 for v in fr.values())
        if not overlap:
            # non-overlapping clusters charge inbound comm to the
            # destination processors
            assert rep.redistribution > 0.0

    def test_per_processor_rows_cover_the_cluster(self):
        g = build_random_graph(10, seed=2)
        c = Cluster(num_processors=5, bandwidth=12.5e6)
        rep = attribute_makespan(LocMpsScheduler().schedule(g, c))
        assert [a.processor for a in rep.per_processor] == list(range(5))
        for a in rep.per_processor:
            assert a.busy == pytest.approx(a.compute + a.redistribution)
            assert a.idle >= -1e-9

    def test_report_text_and_dict(self):
        g = build_random_graph(8, seed=4)
        c = Cluster(num_processors=4, bandwidth=12.5e6)
        rep = attribute_makespan(LocMpsScheduler().schedule(g, c))
        assert rep.dominant in ("compute", "redistribution", "idle")
        assert "makespan" in rep.text()
        d = rep.to_dict()
        assert len(d["per_processor"]) == 4
        json.dumps(d, allow_nan=False)

    @pytest.mark.parametrize("overlap", [True, False])
    def test_critical_chain_ends_at_the_makespan(self, overlap):
        g = build_random_graph(14, seed=9, ccr_volume=20e6)
        c = Cluster(num_processors=4, bandwidth=12.5e6, overlap=overlap)
        schedule = LocMpsScheduler().schedule(g, c)
        chain = extract_critical_chain(schedule, g)
        assert chain
        assert chain[-1].binds == "makespan"
        assert chain[-1].finish == pytest.approx(schedule.makespan)
        for link in chain[:-1]:
            assert link.binds in ("data", "resource")
        # time-ordered and contiguous in the committed schedule
        finishes = [link.finish for link in chain]
        assert finishes == sorted(finishes)
        for link in chain:
            assert link.task in schedule


class TestMetricsRegistry:
    def test_counter_gauge_histogram_render_clean(self):
        reg = MetricsRegistry()
        reg.inc("events", 3, type="task_placed", help="by type")
        reg.set_gauge("queue_depth", 7.0, help="ready queue")
        for v in (0.001, 0.02, 0.3, 4.0):
            reg.observe("span_seconds", v, name="locbs", help="spans")
        text = render_openmetrics(reg)
        assert validate_openmetrics(text) == []
        assert "# EOF" in text
        assert 'repro_events_total{type="task_placed"} 3' in text
        assert "repro_span_seconds_bucket" in text

    def test_label_collision_with_parameter_names(self):
        # labels named "name"/"amount"/"value" must not collide with the
        # positional-only method parameters
        reg = MetricsRegistry()
        reg.inc("lookups", 1, name="x", amount="y")
        reg.observe("obs_seconds", 0.5, value="z")
        assert validate_openmetrics(render_openmetrics(reg)) == []

    def test_negative_counter_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.inc("n", -1)

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.inc("m", 1)
        with pytest.raises(ValueError):
            reg.set_gauge("m", 2.0)

    def test_validator_flags_problems(self):
        assert validate_openmetrics("") != []  # no EOF
        bad = "undeclared_metric 1\n# EOF\n"
        assert any("undeclared" in p or "TYPE" in p
                   for p in validate_openmetrics(bad))

    def test_registry_from_events_covers_provenance(self, tmp_path):
        tr = Tracer()
        g = build_random_graph(10, seed=7, ccr_volume=10e6)
        c = Cluster(num_processors=4, bandwidth=12.5e6)
        LocMpsScheduler(explain=True, tracer=tr).schedule(g, c)
        reg = registry_from_events(tr.events)
        text = render_openmetrics(reg)
        assert validate_openmetrics(text) == []
        assert "repro_placement_decisions_total" in text
        assert "repro_placement_candidates_total" in text


class TestDashboard:
    @pytest.fixture(scope="class")
    def trace_events(self, tmp_path_factory):
        tr = Tracer()
        g = build_random_graph(12, seed=3, ccr_volume=10e6)
        c = Cluster(num_processors=4, bandwidth=12.5e6)
        sched = LocMpsScheduler(explain=True, tracer=tr)
        schedule = sched.schedule(g, c)
        ExecutionEngine(g, c, tracer=tr).execute(schedule)
        path = str(tmp_path_factory.mktemp("dash") / "trace.jsonl")
        write_jsonl(tr, path)
        return read_jsonl(path)

    def test_renders_all_sections(self, trace_events):
        html = render_dashboard(trace_events)
        for marker in (
            "Processor utilization",
            "Makespan attribution",
            "Regret list",
            "Decision provenance",
            "sim_task events",  # replay preferred over planned placements
        ):
            assert marker in html, marker
        assert "Infinity" not in html

    def test_groups_decisions_by_run(self, trace_events):
        html = render_dashboard(trace_events)
        runs = {
            e.fields["run"]
            for e in trace_events
            if e.name == "placement_decision"
        }
        assert runs
        for run in runs:
            assert run in html

    def test_empty_trace_still_renders(self):
        html = render_dashboard([])
        assert "<html" in html and "No task intervals" in html

    def test_write_dashboard(self, trace_events, tmp_path):
        out = write_dashboard(trace_events, tmp_path / "d.html")
        assert out.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")

    def test_planned_fallback_collapses_lookahead_passes(self):
        # without sim or explain events, the heatmap falls back to
        # task_placed — deduplicated, not every speculative pass overlaid
        tr = Tracer()
        g = build_random_graph(10, seed=7)
        c = Cluster(num_processors=4, bandwidth=12.5e6)
        LocMpsScheduler(tracer=tr).schedule(g, c)
        html = render_dashboard(tr.events)
        assert "look-ahead passes" in html


class TestCliIntegration:
    def test_obs_metrics_subcommand(self, tmp_path, capsys):
        from repro.obs.cli import main as obs_main

        tr = Tracer()
        g = build_random_graph(10, seed=7, ccr_volume=10e6)
        c = Cluster(num_processors=4, bandwidth=12.5e6)
        LocMpsScheduler(explain=True, tracer=tr).schedule(g, c)
        src = str(tmp_path / "t.jsonl")
        write_jsonl(tr, src)
        out = str(tmp_path / "m.txt")
        obs_main(["metrics", src, "--out", out, "--check"])
        text = open(out).read()
        assert text.endswith("# EOF\n")
        assert validate_openmetrics(text) == []

    def test_obs_dashboard_subcommand(self, tmp_path, capsys):
        from repro.obs.cli import main as obs_main

        tr = Tracer()
        g = build_random_graph(10, seed=7)
        c = Cluster(num_processors=4, bandwidth=12.5e6)
        LocMpsScheduler(explain=True, tracer=tr).schedule(g, c)
        src = str(tmp_path / "t.jsonl")
        write_jsonl(tr, src)
        dst = str(tmp_path / "d.html")
        obs_main(["dashboard", src, dst, "--title", "smoke"])
        html = open(dst, encoding="utf-8").read()
        assert "smoke" in html and "Decision provenance" in html

    def test_experiments_explain_flag_records_decisions(self, tmp_path, capsys):
        from repro.experiments.cli import main as experiments_main

        path = str(tmp_path / "fig.jsonl")
        experiments_main(
            ["fig9a", "--procs", "4", "--trace", path, "--explain"]
        )
        events = read_jsonl(path)
        decisions = [e for e in events if e.name == "placement_decision"]
        assert decisions
        # every decision round-trips and carries its run label
        for e in decisions:
            d = PlacementDecision.from_dict(e.fields)
            assert d.run and d.candidates

    def test_trace_written_even_when_a_sweep_raises(self, tmp_path, capsys):
        from repro.experiments.cli import main as experiments_main

        path = str(tmp_path / "partial.jsonl")
        with pytest.raises(ValueError):
            experiments_main(
                ["fig9a", "--procs", "4", "0", "--trace", path]
            )
        assert read_jsonl(path)  # partial trace flushed by the finally

    def test_worker_spools_merged_when_a_cell_raises(self):
        from repro.exceptions import ExperimentError
        from repro.experiments.common import run_comparison

        g = build_random_graph(6, seed=1)
        tracer = Tracer()
        with pytest.raises((ValueError, ExperimentError)):
            run_comparison(
                [g],
                ["task"],
                [2, 0],  # P=0 raises inside a worker
                bandwidth=1e6,
                workers=2,
                chunksize=1,
                tracer=tracer,
            )
        # the successful cell's spool reached the tracer before cleanup
        assert any(e.name == "experiment_cell" for e in tracer.events)

    def test_run_comparison_explain_serial_path(self):
        from repro.experiments.common import run_comparison

        g = build_random_graph(6, seed=1)
        tracer = Tracer()
        run_comparison(
            [g],
            ["locmps", "task"],
            [4],
            bandwidth=12.5e6,
            tracer=tracer,
            explain=True,
        )
        decisions = [
            e for e in tracer.events if e.name == "placement_decision"
        ]
        # locmps explains; the TASK scheduler has no explain support and
        # is silently skipped
        assert len(decisions) == g.num_tasks
