"""Canonical content fingerprints for (TaskGraph, Cluster, config) requests.

The schedule cache is keyed by *content*, not by object identity or
insertion history: two graphs built in different vertex/edge orders, in
different processes, under different ``PYTHONHASHSEED`` values, must map
to the same fingerprint whenever they describe the same application. The
canonical form therefore

* sorts tasks by name and edges by ``(src, dst)`` — insertion order never
  leaks into the digest;
* encodes speedup models through the same codecs as
  :mod:`repro.graph.serialization` (adding a model family there makes it
  fingerprintable here for free);
* normalizes every number through ``float()``/``repr`` — CPython's
  shortest-round-trip float repr, stable across processes and supported
  Python versions;
* rejects non-finite values (``allow_nan=False``) instead of silently
  producing a JSON dialect;
* deliberately **excludes cosmetic names** (``TaskGraph.name``,
  ``Cluster.name``) — a renamed copy of the same application on the same
  machine is the same request.

:func:`graph_signature` produces the per-vertex content hashes used by
the warm-start neighbor search: a task's hash covers its profile, attrs,
and incident edges, so the *vertex delta* between two graphs is simply
the number of task names whose hashes disagree (plus names present in
only one of the two).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping

from repro.cluster import Cluster
from repro.exceptions import CacheError
from repro.graph import TaskGraph
from repro.graph.serialization import graph_to_dict

__all__ = [
    "FINGERPRINT_SCHEMA",
    "RequestKey",
    "canonical_json",
    "canonical_graph_doc",
    "graph_fingerprint",
    "cluster_fingerprint",
    "config_fingerprint",
    "request_fingerprint",
    "graph_signature",
    "signature_delta",
]

#: bump when the canonical form changes — old cache entries stop matching
#: instead of silently colliding with the new encoding
FINGERPRINT_SCHEMA = "repro.cache.fingerprint/v1"


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, finite floats only."""
    try:
        return json.dumps(
            obj, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise CacheError(f"value is not canonically serializable: {exc}") from exc


def _digest(doc: Any) -> str:
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


def canonical_graph_doc(graph: TaskGraph) -> Dict[str, Any]:
    """The order-invariant content of *graph* (name dropped, lists sorted)."""
    doc = graph_to_dict(graph)
    tasks = sorted(
        (
            {
                "name": t["name"],
                "sequential_time": float(t["sequential_time"]),
                "model": t["model"],
                "attrs": t["attrs"],
            }
            for t in doc["tasks"]
        ),
        key=lambda t: t["name"],
    )
    edges = sorted(
        (
            {
                "src": e["src"],
                "dst": e["dst"],
                "data_volume": float(e["data_volume"]),
            }
            for e in doc["edges"]
        ),
        key=lambda e: (e["src"], e["dst"]),
    )
    return {"tasks": tasks, "edges": edges}


def graph_fingerprint(graph: TaskGraph) -> str:
    """Content hash of *graph*, invariant to vertex/edge insertion order."""
    return _digest(canonical_graph_doc(graph))


def cluster_fingerprint(cluster: Cluster) -> str:
    """Content hash of *cluster* (the cosmetic ``name`` is excluded)."""
    return _digest(
        {
            "num_processors": int(cluster.num_processors),
            "bandwidth": float(cluster.bandwidth),
            "overlap": bool(cluster.overlap),
        }
    )


def config_fingerprint(config: Mapping[str, Any]) -> str:
    """Content hash of a scheduler-configuration mapping.

    The mapping must be JSON-serializable; key order never matters.
    Accelerator-only knobs (``initial_allocation``, ``parallel_workers``,
    tracers) must NOT be part of the config a caller fingerprints — they
    change how fast a result is computed, and in the warm-start case
    *which local optimum is reached*, but they are not part of the
    request's identity. :class:`~repro.cache.store.ScheduleCache` entries
    record the computation ``mode`` separately for exactly that reason.
    """
    return _digest(dict(config))


@dataclass(frozen=True)
class RequestKey:
    """The composite cache key of one scheduling request."""

    graph_fp: str
    cluster_fp: str
    config_fp: str

    @property
    def fingerprint(self) -> str:
        """The combined content address (what names the disk entry)."""
        return _digest(
            {
                "schema": FINGERPRINT_SCHEMA,
                "graph": self.graph_fp,
                "cluster": self.cluster_fp,
                "config": self.config_fp,
            }
        )


def request_fingerprint(
    graph: TaskGraph, cluster: Cluster, config: Mapping[str, Any]
) -> RequestKey:
    """The :class:`RequestKey` of a (graph, cluster, config) request."""
    return RequestKey(
        graph_fp=graph_fingerprint(graph),
        cluster_fp=cluster_fingerprint(cluster),
        config_fp=config_fingerprint(config),
    )


def graph_signature(graph: TaskGraph) -> Dict[str, str]:
    """Per-task content hashes (profile + attrs + incident edges).

    A task's hash changes when its own definition changes *or* when any
    edge touching it changes, so
    ``signature_delta(graph_signature(a), graph_signature(b))`` counts
    exactly the vertices a warm start would have to re-derive.
    """
    doc = graph_to_dict(graph)
    tasks: Dict[str, Dict[str, Any]] = {
        t["name"]: {
            "sequential_time": float(t["sequential_time"]),
            "model": t["model"],
            "attrs": t["attrs"],
            "in": [],
            "out": [],
        }
        for t in doc["tasks"]
    }
    for e in doc["edges"]:
        vol = float(e["data_volume"])
        tasks[e["dst"]]["in"].append([e["src"], vol])
        tasks[e["src"]]["out"].append([e["dst"], vol])
    out: Dict[str, str] = {}
    for name, body in tasks.items():
        body["in"].sort()
        body["out"].sort()
        out[name] = _digest(body)
    return out


def signature_delta(a: Mapping[str, str], b: Mapping[str, str]) -> int:
    """Vertex delta between two :func:`graph_signature` mappings.

    Counts tasks present in only one graph plus tasks whose content hash
    differs. Zero iff the graphs have identical content.
    """
    delta = 0
    for name, h in a.items():
        if b.get(name) != h:
            delta += 1
    for name in b:
        if name not in a:
            delta += 1
    return delta
