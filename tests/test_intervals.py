"""Interval algebra: unit tests plus hypothesis properties."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.intervals import EPS, Interval, IntervalSet


class TestInterval:
    def test_length(self):
        assert Interval(1.0, 3.5).length == 2.5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Interval(2.0, 2.0)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Interval(3.0, 1.0)

    def test_infinite_end_allowed(self):
        iv = Interval(0.0, math.inf)
        assert iv.length == math.inf

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            Interval(math.nan, 1.0)

    def test_contains_half_open(self):
        iv = Interval(1.0, 2.0)
        assert iv.contains(1.0)
        assert iv.contains(1.5)
        assert not iv.contains(2.0)

    def test_overlaps(self):
        assert Interval(0, 2).overlaps(Interval(1, 3))
        assert not Interval(0, 1).overlaps(Interval(1, 2))  # touching

    def test_covers(self):
        assert Interval(0, 10).covers(Interval(2, 3))
        assert not Interval(0, 2).covers(Interval(1, 3))

    def test_intersection(self):
        assert Interval(0, 5).intersection(Interval(3, 8)) == Interval(3, 5)
        assert Interval(0, 1).intersection(Interval(2, 3)) is None

    def test_shift(self):
        assert Interval(1, 2).shift(10) == Interval(11, 12)

    def test_ordering(self):
        assert Interval(0, 1) < Interval(0.5, 1)


class TestIntervalSet:
    def test_add_merges_touching(self):
        s = IntervalSet([Interval(0, 1), Interval(1, 2)])
        assert len(s) == 1
        assert s.intervals[0] == Interval(0, 2)

    def test_add_keeps_disjoint(self):
        s = IntervalSet([Interval(0, 1), Interval(3, 4)])
        assert len(s) == 2

    def test_add_merges_overlapping_chain(self):
        s = IntervalSet([Interval(0, 2), Interval(5, 7)])
        s.add(Interval(1, 6))
        assert len(s) == 1
        assert s.intervals[0] == Interval(0, 7)

    def test_subtract_splits(self):
        s = IntervalSet([Interval(0, 10)])
        s.subtract(Interval(3, 4))
        assert list(s.intervals) == [Interval(0, 3), Interval(4, 10)]

    def test_subtract_noop_outside(self):
        s = IntervalSet([Interval(0, 1)])
        s.subtract(Interval(5, 6))
        assert list(s.intervals) == [Interval(0, 1)]

    def test_total_length(self):
        s = IntervalSet([Interval(0, 1), Interval(2, 4)])
        assert s.total_length == 3.0

    def test_from_pairs(self):
        s = IntervalSet.from_pairs([(0, 1), (2, 3)])
        assert len(s) == 2

    def test_complement(self):
        s = IntervalSet([Interval(2, 3), Interval(5, 6)])
        gaps = s.complement(Interval(0, 10))
        assert list(gaps.intervals) == [
            Interval(0, 2),
            Interval(3, 5),
            Interval(6, 10),
        ]

    def test_complement_empty_set(self):
        gaps = IntervalSet().complement(Interval(1, 2))
        assert list(gaps.intervals) == [Interval(1, 2)]

    def test_union_and_intersection(self):
        a = IntervalSet([Interval(0, 3)])
        b = IntervalSet([Interval(2, 5)])
        assert a.union(b).total_length == 5.0
        assert a.intersection(b).intervals[0] == Interval(2, 3)

    def test_first_fit_before_everything(self):
        s = IntervalSet([Interval(5, 6)])
        assert s.first_fit(0.0, 2.0) == 0.0

    def test_first_fit_between(self):
        s = IntervalSet([Interval(0, 2), Interval(5, 6)])
        assert s.first_fit(0.0, 3.0) == 2.0

    def test_first_fit_after_all(self):
        s = IntervalSet([Interval(0, 2), Interval(3, 6)])
        assert s.first_fit(0.0, 1.5) == 6.0

    def test_first_fit_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            IntervalSet().first_fit(0.0, 0.0)

    def test_free_at(self):
        s = IntervalSet([Interval(1, 2)])
        assert s.free_at(2.0, 1.0)
        assert not s.free_at(0.5, 1.0)

    def test_next_event_after(self):
        s = IntervalSet([Interval(1, 2), Interval(4, 6)])
        assert s.next_event_after(0.0) == 1.0
        assert s.next_event_after(2.0) == 4.0
        assert s.next_event_after(6.0) is None

    def test_equality(self):
        assert IntervalSet([Interval(0, 1)]) == IntervalSet([Interval(0, 1)])
        assert IntervalSet([Interval(0, 1)]) != IntervalSet([Interval(0, 2)])


# -- property-based ---------------------------------------------------------------

finite_times = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def intervals(draw):
    start = draw(finite_times)
    length = draw(st.floats(min_value=0.01, max_value=1e4))
    return Interval(start, start + length)


@given(st.lists(intervals(), max_size=20))
@settings(max_examples=200, deadline=None)
def test_property_normal_form(ivs):
    s = IntervalSet(ivs)
    stored = list(s.intervals)
    for a, b in zip(stored, stored[1:]):
        assert a.end < b.start + EPS  # sorted, disjoint (may touch within EPS)


@given(st.lists(intervals(), max_size=15))
@settings(max_examples=200, deadline=None)
def test_property_total_length_never_exceeds_sum(ivs):
    s = IntervalSet(ivs)
    assert s.total_length <= sum(iv.length for iv in ivs) + 1e-6


@given(st.lists(intervals(), max_size=10), intervals())
@settings(max_examples=200, deadline=None)
def test_property_subtract_removes_overlap(ivs, cut):
    s = IntervalSet(ivs)
    s.subtract(cut)
    assert not s.overlaps(cut)


@given(st.lists(intervals(), max_size=10), finite_times,
       st.floats(min_value=0.01, max_value=100))
@settings(max_examples=200, deadline=None)
def test_property_first_fit_is_free_and_after_earliest(ivs, earliest, dur):
    s = IntervalSet(ivs)
    t = s.first_fit(earliest, dur)
    assert t >= earliest
    assert s.free_at(t, dur)
