"""``python -m repro.experiments`` — figure regeneration CLI."""

from repro.experiments.cli import main

main()
