"""Fig 11 — "actual execution" of CCSD T1 (noisy single-port replay)."""

from __future__ import annotations

import pytest

from repro.experiments import fig11
from repro.utils.mathx import geo_mean

from benchmarks.conftest import emit


def test_fig11_actual_execution(run_once):
    result = run_once(
        fig11.run,
        proc_counts=[2, 4, 8, 16],
        trials=3,
    )
    emit(result)
    rel = result.series
    assert all(v == pytest.approx(1.0) for v in rel["locmps"])
    # simulation trends carry over to (noisy) execution: TASK and CPA still
    # trail badly, and no scheme meaningfully beats LoC-MPS
    assert geo_mean(rel["task"]) < 0.8
    assert geo_mean(rel["cpa"]) < 1.0
    for scheme in ("icaslb", "cpr", "data"):
        assert geo_mean(rel[scheme]) <= 1.05, scheme
